#include "rtl/vhdl.hpp"

#include <algorithm>
#include <sstream>

#include "support/strings.hpp"

namespace hls {

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    } else if (!out.empty() && out.back() != '_') {
      out += '_';
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

class Emitter {
public:
  explicit Emitter(const Dfg& dfg) : dfg_(dfg) { assign_names(); }

  std::string run(const std::string& architecture);

private:
  void assign_names() {
    names_.resize(dfg_.size());
    std::vector<std::string> used;
    for (std::uint32_t i = 0; i < dfg_.size(); ++i) {
      const Node& n = dfg_.node(NodeId{i});
      std::string name = sanitize(n.name);
      if (name.empty()) name = "n" + std::to_string(i);
      while (std::find(used.begin(), used.end(), name) != used.end()) {
        name += "_" + std::to_string(i);
      }
      used.push_back(name);
      names_[i] = name;
    }
  }

  std::string slv(unsigned width) const {
    return strformat("std_logic_vector(%u downto 0)", width - 1);
  }

  std::string binary_literal(std::uint64_t v, unsigned w) const {
    std::string bits;
    for (unsigned b = w; b-- > 0;) bits += ((v >> b) & 1) ? '1' : '0';
    return "\"" + bits + "\"";
  }

  /// Operand as a VHDL expression, zero-padded to `target` bits when wider
  /// than the slice ("0" & A(5 downto 0), exactly the paper's style).
  std::string operand(const Operand& o, unsigned target) const {
    const Node& p = dfg_.node(o.node);
    if (p.kind == OpKind::Const) {
      // Constants are inlined as padded literals, never declared.
      const std::uint64_t sliced = (p.value >> o.bits.lo) &
                                   ((o.bits.width >= 64 ? 0 : (std::uint64_t{1} << o.bits.width)) - 1);
      return binary_literal(sliced, target);
    }
    std::string expr = names_[o.node.index];
    if (!(o.bits.lo == 0 && o.bits.width == p.width)) {
      expr += o.bits.width == 1 ? strformat("(%u)", o.bits.lo)
                                : strformat("(%u downto %u)", o.bits.msb(), o.bits.lo);
    }
    if (target > o.bits.width) {
      expr = binary_literal(0, target - o.bits.width) + " & " + expr;
      expr = "(" + expr + ")";
    }
    return expr;
  }

  std::string expression(const Node& n) const {
    auto bin = [&](const char* op) {
      return operand(n.operands[0], n.width) + " " + op + " " +
             operand(n.operands[1], n.width);
    };
    switch (n.kind) {
      case OpKind::Add: {
        std::string e = bin("+");
        if (n.has_carry_in()) e += " + " + operand(n.operands[2], 1);
        return e;
      }
      case OpKind::Sub: return bin("-");
      case OpKind::Mul:
        return operand(n.operands[0], n.operands[0].bits.width) + " * " +
               operand(n.operands[1], n.operands[1].bits.width);
      case OpKind::And: return bin("and");
      case OpKind::Or: return bin("or");
      case OpKind::Xor: return bin("xor");
      case OpKind::Not: return "not " + operand(n.operands[0], n.width);
      case OpKind::Neg: return "-" + operand(n.operands[0], n.width);
      case OpKind::Lt: return bin("<");
      case OpKind::Le: return bin("<=");
      case OpKind::Gt: return bin(">");
      case OpKind::Ge: return bin(">=");
      case OpKind::Eq: return bin("=");
      case OpKind::Ne: return bin("/=");
      case OpKind::Max:
        return "maximum(" + operand(n.operands[0], n.width) + ", " +
               operand(n.operands[1], n.width) + ")";
      case OpKind::Min:
        return "minimum(" + operand(n.operands[0], n.width) + ", " +
               operand(n.operands[1], n.width) + ")";
      case OpKind::Concat: {
        // VHDL concatenation is MSB-first; operands are stored LSB-first.
        std::vector<std::string> parts;
        for (auto it = n.operands.rbegin(); it != n.operands.rend(); ++it) {
          parts.push_back(operand(*it, it->bits.width));
        }
        return join(parts, " & ");
      }
      case OpKind::Const:
        return binary_literal(n.value, n.width);
      default:
        HLS_ASSERT(false, "unexpected node kind in VHDL expression");
    }
  }

  const Dfg& dfg_;
  std::vector<std::string> names_;
};

std::string Emitter::run(const std::string& architecture) {
  const std::string entity = sanitize(dfg_.name().empty() ? "design" : dfg_.name());
  std::ostringstream os;
  os << "entity " << entity << " is\n";
  os << "port (clk: in std_logic;\n";
  for (NodeId id : dfg_.inputs()) {
    const Node& n = dfg_.node(id);
    os << "  " << names_[id.index] << ": in " << slv(n.width) << ";\n";
  }
  const std::vector<NodeId> outs = dfg_.outputs();
  for (std::size_t i = 0; i < outs.size(); ++i) {
    const Node& n = dfg_.node(outs[i]);
    os << "  " << names_[outs[i].index] << ": out " << slv(n.width)
       << (i + 1 == outs.size() ? ");\n" : ";\n");
  }
  os << "end " << entity << ";\n\n";
  os << "architecture " << architecture << " of " << entity << " is\n";
  os << "begin\n";
  os << "main: process\n";
  for (std::uint32_t i = 0; i < dfg_.size(); ++i) {
    const Node& n = dfg_.node(NodeId{i});
    if (is_structural(n.kind) && n.kind != OpKind::Concat) continue;
    os << "  variable " << names_[i] << ": " << slv(n.width) << ";\n";
  }
  os << "begin\n";
  for (std::uint32_t i = 0; i < dfg_.size(); ++i) {
    const Node& n = dfg_.node(NodeId{i});
    switch (n.kind) {
      case OpKind::Input:
      case OpKind::Const:
        break;
      case OpKind::Output:
        os << "  " << names_[i] << " <= "
           << operand(n.operands[0], n.operands[0].bits.width) << ";\n";
        break;
      default:
        os << "  " << names_[i] << " := " << expression(n) << ";\n";
        break;
    }
  }
  os << "end process main;\n";
  os << "end " << architecture << ";\n";
  return os.str();
}

} // namespace

std::string emit_vhdl(const Dfg& dfg, const std::string& architecture) {
  Emitter e(dfg);
  return e.run(architecture);
}

} // namespace hls
