#pragma once
// Behavioural VHDL-subset emitter.
//
// Renders a specification the way the paper presents its examples (Fig. 1 a
// and Fig. 2 a): an entity with the primary ports and one process assigning
// every operation in topological order. Fragmented specifications come out
// with the same sliced-operand, carry-chained shape as the paper's
// transformed VHDL. The output is presentation-faithful (a proof artefact
// and example payload), not a synthesis input of this library.

#include <string>

#include "ir/dfg.hpp"

namespace hls {

std::string emit_vhdl(const Dfg& dfg, const std::string& architecture = "beh");

} // namespace hls
