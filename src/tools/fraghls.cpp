// fraghls — command-line driver for the presynthesis transformation flow.
//
//   fraghls <spec.hls> --latency N [options]
//
// Reads a behavioural specification in the DSL (see examples/specs/), runs
// the requested flows through hls::Session and prints schedules, reports,
// and optionally the transformed behavioural VHDL or the structural RTL.
//
// The option list lives in ONE table (kOptions) that drives both the parser
// and the usage text, so the help cannot drift from the implementation.

#include <charconv>
#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dse/explorer.hpp"
#include "flow/flow.hpp"
#include "flow/json.hpp"
#include "flow/pipeline.hpp"
#include "flow/session.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "ir/dot.hpp"
#include "ir/print.hpp"
#include "parser/parser.hpp"
#include "rtl/rtl_emit.hpp"
#include "serve/server.hpp"
#include "suites/suites.hpp"
#include "support/failpoint.hpp"
#include "rtl/testbench.hpp"
#include "rtl/vhdl.hpp"
#include "sched/core.hpp"
#include "sched/schedule.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "timing/target.hpp"

using namespace hls;

namespace {

struct Args {
  std::string spec_path;
  std::string suite;  ///< registry suite instead of a spec file (--suite)
  unsigned latency = 0;
  unsigned sweep_lo = 0, sweep_hi = 0;
  std::string flow = "all";
  // Exploration mode (--explore): axes + knobs of an ExploreRequest.
  bool explore = false;
  std::string flows_csv, schedulers_csv, targets_csv;
  unsigned budget = 0;
  ObjectiveWeights weights;
  bool objective_set = false;  ///< --objective given (resets the defaults)
  bool csv = false;
  bool no_prune = false;
  unsigned n_bits = 0;
  bool dump_dfg = false;
  bool dump_schedule = false;
  bool emit_behavioural = false;
  bool emit_rtl = false;
  bool emit_dot_graph = false;
  unsigned emit_tb_vectors = 0;
  bool narrow = false;
  std::string scheduler = "list";
  std::string target = kDefaultTargetName;
  bool pipeline = false;
  bool partition = false;
  bool timing = false;
  bool json = false;
  unsigned workers = 0;
  /// --delta / --overhead derive a modified copy of --target's delay model,
  /// registered as "<target>+cli" (the user-registration idiom, from the
  /// command line).
  std::optional<double> delta_override;
  std::optional<double> overhead_override;
  bool list_registries = false;  ///< any --list-* flag was given
  // Serving mode (--serve): JSON-lines session service (serve/server.hpp).
  bool serve = false;
  std::optional<unsigned> serve_port;  ///< TCP instead of stdin
  unsigned cache_mb = 0;               ///< serving-cache bound (0 = unbounded)
  unsigned cache_shards = 8;
  double deadline_ms = 0;              ///< default per-request deadline
  // Overload policy (serve): admission bound + queue + storm threshold.
  std::optional<unsigned> admit_max;
  std::optional<unsigned> admit_queue;
  std::optional<unsigned> storm_evictions;
  // Fault injection (support/failpoint.hpp): any mode, for chaos testing.
  std::string failpoints;              ///< --failpoints spec, "" = none
  bool list_failpoints = false;
  // Observability (obs/): whole-invocation span capture + metrics dump.
  std::string trace_path;              ///< --trace FILE, "" = tracing off
  bool metrics = false;                ///< --metrics: arm + print exposition
};

/// The three name registries the CLI fronts, as one table: drives the
/// --list-flows / --list-schedulers / --list-targets modes AND the registry
/// summary in the usage text, so neither can drift from the registries.
struct RegistryListing {
  const char* kind;  ///< "flows" | "schedulers" | "targets"
  bool selected = false;
  /// (name, description) rows; empty description for kinds without one.
  std::vector<std::pair<std::string, std::string>> (*entries)();
};

std::vector<std::pair<std::string, std::string>> names_only(
    std::vector<std::string> names) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(names.size());
  for (std::string& n : names) out.push_back({std::move(n), ""});
  return out;
}

RegistryListing kRegistries[] = {
    {"flows", false,
     [] { return names_only(FlowRegistry::global().names()); }},
    {"schedulers", false,
     [] { return names_only(SchedulerRegistry::global().names()); }},
    {"targets", false, [] {
       std::vector<std::pair<std::string, std::string>> out;
       for (const std::string& n : TargetRegistry::global().names()) {
         out.push_back({n, resolve_target(n).description});
       }
       return out;
     }},
};

/// Sorted names of one registry kind, joined for help/error text.
std::string registry_names(const char* kind) {
  for (const RegistryListing& r : kRegistries) {
    if (std::string(r.kind) == kind) {
      std::vector<std::string> names;
      for (const auto& [name, desc] : r.entries()) names.push_back(name);
      return join(names, ", ");
    }
  }
  return "";
}

void print_registry(std::ostream& os, const RegistryListing& r) {
  os << r.kind << ":\n";
  for (const auto& [name, desc] : r.entries()) {
    os << "  " << name;
    if (!desc.empty()) os << "  - " << desc;
    os << '\n';
  }
}

[[noreturn]] void usage(const char* msg = nullptr);

unsigned parse_unsigned(const std::string& v) {
  // Strict: the whole string must be digits (stoul would wrap "-1" and
  // accept trailing garbage like "3x").
  unsigned out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    usage(("expected a non-negative number, got '" + v + "'").c_str());
  }
  return out;
}

double parse_double(const std::string& v) {
  double out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size() || out < 0) {
    usage(("expected a non-negative number, got '" + v + "'").c_str());
  }
  return out;
}

/// One CLI option: flags have a null metavar; `apply` receives the value
/// (empty for flags). The usage text is generated from this same table.
struct OptionSpec {
  const char* name;
  const char* metavar;  ///< nullptr for boolean flags
  const char* help;
  void (*apply)(Args&, const std::string&);
};

const OptionSpec kOptions[] = {
    {"--latency", "N", "time constraint in cycles (this or --sweep required)",
     [](Args& a, const std::string& v) { a.latency = parse_unsigned(v); }},
    {"--sweep", "LO..HI", "latency sweep (Fig. 4 style) instead of one latency",
     [](Args& a, const std::string& v) {
       const std::size_t dots = v.find("..");
       if (dots == std::string::npos) usage("--sweep expects LO..HI");
       a.sweep_lo = parse_unsigned(v.substr(0, dots));
       a.sweep_hi = parse_unsigned(v.substr(dots + 2));
       if (a.sweep_lo == 0 || a.sweep_hi < a.sweep_lo) {
         usage("--sweep bounds must satisfy 1 <= LO <= HI");
       }
     }},
    {"--flow", "F", "original | blc | optimized | all, or a registered flow "
                    "name (default: all)",
     [](Args& a, const std::string& v) { a.flow = v; }},
    {"--n-bits", "N", "override the cycle budget estimate (optimized flow)",
     [](Args& a, const std::string& v) { a.n_bits = parse_unsigned(v); }},
    {"--dump-dfg", nullptr, "print the parsed DFG and its kernel form",
     [](Args& a, const std::string&) { a.dump_dfg = true; }},
    {"--dump-schedule", nullptr,
     "print the optimized schedule (Fig. 2 b style)",
     [](Args& a, const std::string&) { a.dump_schedule = true; }},
    {"--emit-vhdl", nullptr,
     "print the transformed behavioural VHDL (Fig. 2 a)",
     [](Args& a, const std::string&) { a.emit_behavioural = true; }},
    {"--emit-rtl", nullptr, "print the structural RTL (FSM + datapath)",
     [](Args& a, const std::string&) { a.emit_rtl = true; }},
    {"--emit-dot", nullptr, "print the transformed DFG as Graphviz dot",
     [](Args& a, const std::string&) { a.emit_dot_graph = true; }},
    {"--emit-tb", "N", "print a self-checking VHDL testbench with N vectors",
     [](Args& a, const std::string& v) {
       a.emit_tb_vectors = parse_unsigned(v);
     }},
    {"--narrow", nullptr, "width-narrow the kernel before transforming",
     [](Args& a, const std::string&) { a.narrow = true; }},
    {"--scheduler", "S",
     "fragment scheduler by registry name (--list-schedulers; default: list)",
     [](Args& a, const std::string& v) { a.scheduler = v; }},
    {"--target", "T",
     "technology target by registry name (--list-targets; default: "
     "paper-ripple)",
     [](Args& a, const std::string& v) { a.target = v; }},
    {"--list-flows", nullptr, "list the flow registry and exit",
     [](Args& a, const std::string&) {
       a.list_registries = kRegistries[0].selected = true;
     }},
    {"--list-schedulers", nullptr, "list the scheduler registry and exit",
     [](Args& a, const std::string&) {
       a.list_registries = kRegistries[1].selected = true;
     }},
    {"--list-targets", nullptr, "list the target registry and exit",
     [](Args& a, const std::string&) {
       a.list_registries = kRegistries[2].selected = true;
     }},
    {"--pipeline", nullptr,
     "report the minimal initiation interval (optimized)",
     [](Args& a, const std::string&) { a.pipeline = true; }},
    {"--partition", nullptr,
     "run the multi-kernel 'partitioned' flow and print the per-kernel "
     "composition summary (latency split, budgets, cut edges)",
     [](Args& a, const std::string&) { a.partition = true; }},
    {"--timing", nullptr,
     "report per-stage wall-clock (parse/kernel/transform/schedule/"
     "allocate/verify)",
     [](Args& a, const std::string&) { a.timing = true; }},
    {"--json", nullptr, "machine-readable FlowResult output",
     [](Args& a, const std::string&) { a.json = true; }},
    {"--workers", "N", "worker threads for sweeps/batches (default: all cores)",
     [](Args& a, const std::string& v) { a.workers = parse_unsigned(v); }},
    {"--delta", "NS",
     "override the target's 1-bit adder delay in ns (registers a derived "
     "'<target>+cli' target)",
     [](Args& a, const std::string& v) { a.delta_override = parse_double(v); }},
    {"--overhead", "NS",
     "override the target's register/clock overhead in ns (same derived "
     "target)",
     [](Args& a, const std::string& v) {
       a.overhead_override = parse_double(v);
     }},
    {"--suite", "NAME",
     "synthesize a registry suite instead of a spec file (see suite names "
     "in the error on a typo)",
     [](Args& a, const std::string& v) { a.suite = v; }},
    {"--explore", nullptr,
     "design-space exploration over flows x schedulers x targets x "
     "latencies (needs --sweep or --latency; cached + pruned Pareto front)",
     [](Args& a, const std::string&) { a.explore = true; }},
    {"--flows", "LIST", "explore: comma-separated flow axis (default: "
                        "optimized)",
     [](Args& a, const std::string& v) { a.flows_csv = v; }},
    {"--schedulers", "LIST",
     "explore: comma-separated scheduler axis (default: --scheduler)",
     [](Args& a, const std::string& v) { a.schedulers_csv = v; }},
    {"--targets", "LIST",
     "explore: comma-separated target axis (default: --target)",
     [](Args& a, const std::string& v) { a.targets_csv = v; }},
    {"--budget", "N", "explore: evaluate at most N points (0 = unlimited)",
     [](Args& a, const std::string& v) { a.budget = parse_unsigned(v); }},
    {"--objective", "SPEC",
     "explore: ranking weights 'latency=0,cycle=1,exec=0,area=0' (unnamed "
     "keys are 0; dominance is weight-free)",
     [](Args& a, const std::string& v) {
       // Giving --objective replaces the whole default weighting (cycle=1):
       // naming only 'exec=1' must not silently keep ranking by cycle too.
       if (!a.objective_set) {
         a.weights = ObjectiveWeights{0, 0, 0, 0};
         a.objective_set = true;
       }
       if (split(v, ',').empty()) {
         usage("--objective expects KEY=WEIGHT[,KEY=WEIGHT...]");
       }
       for (const std::string& part : split(v, ',')) {
         const std::size_t eq = part.find('=');
         if (eq == std::string::npos) {
           usage("--objective expects KEY=WEIGHT[,KEY=WEIGHT...]");
         }
         const std::string key = part.substr(0, eq);
         const double w = parse_double(part.substr(eq + 1));
         if (key == "latency") {
           a.weights.latency = w;
         } else if (key == "cycle") {
           a.weights.cycle_ns = w;
         } else if (key == "exec") {
           a.weights.execution_ns = w;
         } else if (key == "area") {
           a.weights.area = w;
         } else {
           usage(("--objective keys are latency|cycle|exec|area, got '" +
                  key + "'")
                     .c_str());
         }
       }
     }},
    {"--no-prune", nullptr,
     "explore: disable dominated-bound pruning (exhaustive grid)",
     [](Args& a, const std::string&) { a.no_prune = true; }},
    {"--csv", nullptr, "explore: CSV point listing instead of tables",
     [](Args& a, const std::string&) { a.csv = true; }},
    {"--serve", nullptr,
     "session service: one JSON request per stdin line, one response line "
     "(run|sweep|explore|stats|shutdown; see README 'Serving')",
     [](Args& a, const std::string&) { a.serve = true; }},
    {"--serve-port", "P",
     "serve: listen on TCP 127.0.0.1:P instead of stdin (0 = ephemeral, "
     "port printed to stderr)",
     [](Args& a, const std::string& v) {
       a.serve_port = parse_unsigned(v);
     }},
    {"--cache-mb", "N",
     "serve: bound the artifact cache to ~N MiB, LRU-evicted (default: "
     "unbounded)",
     [](Args& a, const std::string& v) { a.cache_mb = parse_unsigned(v); }},
    {"--cache-shards", "N",
     "serve: cache lock stripes, rounded up to a power of two (default: 8)",
     [](Args& a, const std::string& v) {
       a.cache_shards = parse_unsigned(v);
     }},
    {"--deadline-ms", "MS",
     "serve: default per-request deadline (requests may override; 0 = none)",
     [](Args& a, const std::string& v) { a.deadline_ms = parse_double(v); }},
    {"--admit-max", "N",
     "serve: max concurrent run/sweep/explore requests (default: all cores)",
     [](Args& a, const std::string& v) { a.admit_max = parse_unsigned(v); }},
    {"--admit-queue", "N",
     "serve: heavy requests allowed to wait for a slot; beyond this the "
     "server sheds with an 'overloaded' envelope (default: 16)",
     [](Args& a, const std::string& v) { a.admit_queue = parse_unsigned(v); }},
    {"--storm-evictions", "N",
     "serve: cache evictions between heavy requests that trigger degraded "
     "cache-bypass mode (default: 0 = never)",
     [](Args& a, const std::string& v) {
       a.storm_evictions = parse_unsigned(v);
     }},
    {"--trace", "FILE",
     "write a Chrome trace-event JSON of this invocation's spans to FILE "
     "(open in chrome://tracing or Perfetto); --json gains a \"trace\" key",
     [](Args& a, const std::string& v) { a.trace_path = v; }},
    {"--metrics", nullptr,
     "arm the metrics registry (obs/metrics.hpp) and print its Prometheus "
     "text exposition to stderr after the run",
     [](Args& a, const std::string&) { a.metrics = true; }},
    {"--failpoints", "SPEC",
     "arm fault injection: NAME=error|delay:MS|alloc[*N],... (also the "
     "FRAGHLS_FAILPOINTS env var; see --list-failpoints)",
     [](Args& a, const std::string& v) { a.failpoints = v; }},
    {"--list-failpoints", nullptr,
     "print the failpoint registry (one name per line) and exit",
     [](Args& a, const std::string&) { a.list_failpoints = true; }},
};

[[noreturn]] void usage(const char* msg) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr << "usage: fraghls <spec.hls> (--latency N | --sweep LO..HI) "
               "[options]\n\noptions:\n";
  std::size_t width = 0;
  for (const OptionSpec& o : kOptions) {
    std::size_t w = std::string(o.name).size();
    if (o.metavar) w += 1 + std::string(o.metavar).size();
    width = std::max(width, w);
  }
  for (const OptionSpec& o : kOptions) {
    std::string left = o.name;
    if (o.metavar) left += std::string(" ") + o.metavar;
    std::cerr << "  " << left << std::string(width - left.size() + 2, ' ')
              << o.help << '\n';
  }
  // Printed from the live registries (the same table as --list-*), so the
  // help cannot drift from what is actually registered.
  std::cerr << "\nregistries:\n";
  for (const RegistryListing& r : kRegistries) {
    std::cerr << "  " << r.kind << ":"
              << std::string(12 - std::string(r.kind).size(), ' ')
              << registry_names(r.kind) << '\n';
  }
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage();
    const OptionSpec* spec = nullptr;
    for (const OptionSpec& o : kOptions) {
      if (arg == o.name) spec = &o;
    }
    if (spec) {
      std::string value;
      if (spec->metavar) {
        if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
        value = argv[++i];
      }
      spec->apply(a, value);
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown option " + arg).c_str());
    } else if (a.spec_path.empty()) {
      a.spec_path = arg;
    } else {
      usage("more than one spec file given");
    }
  }
  if (a.list_failpoints) {
    for (const std::string& name : failpoint_names()) {
      std::cout << name << '\n';
    }
    std::exit(0);
  }
  if (a.list_registries) {
    // Self-description mode: print the selected registries and exit
    // successfully; no spec or constraint is required.
    for (const RegistryListing& r : kRegistries) {
      if (r.selected) print_registry(std::cout, r);
    }
    std::exit(0);
  }
  if (a.serve) {
    // Serving mode: requests arrive on the protocol, so the spec/latency
    // requirements (and every point-mode flag) do not apply.
    if (!a.spec_path.empty() || !a.suite.empty() || a.latency != 0 ||
        a.sweep_lo != 0 || a.explore) {
      usage("--serve takes requests on stdin (or --serve-port); spec files, "
            "--latency/--sweep and --explore do not apply");
    }
    if (!a.trace_path.empty() || a.metrics) {
      usage("--serve observability is per-request: send \"trace\": true in a "
            "request, or the 'metrics' request kind (--trace/--metrics apply "
            "to point/sweep/explore invocations)");
    }
    return a;
  }
  if (a.serve_port || a.cache_mb != 0 || a.cache_shards != 8 ||
      a.deadline_ms != 0 || a.admit_max || a.admit_queue ||
      a.storm_evictions) {
    usage("--serve-port/--cache-mb/--cache-shards/--deadline-ms/--admit-max/"
          "--admit-queue/--storm-evictions require --serve");
  }
  if (!a.suite.empty() && !a.spec_path.empty()) {
    usage("give a spec file or --suite, not both");
  }
  if (a.spec_path.empty() && a.suite.empty()) {
    usage("no spec file (or --suite) given");
  }
  if (a.latency == 0 && a.sweep_lo == 0) {
    usage("--latency N or --sweep LO..HI is required");
  }
  if (!a.explore &&
      (a.csv || a.no_prune || a.budget != 0 || a.objective_set ||
       !a.flows_csv.empty() || !a.schedulers_csv.empty() ||
       !a.targets_csv.empty())) {
    usage("--flows/--schedulers/--targets/--budget/--objective/--no-prune/"
          "--csv require --explore");
  }
  // The converse: point-mode-only flags are rejected (not silently
  // ignored) in explore mode — the axes are --flows, the budget override
  // has no explore equivalent, and the emitters feed on one point.
  if (a.explore &&
      (a.flow != "all" || a.n_bits != 0 || a.pipeline || a.partition ||
       a.dump_dfg || a.dump_schedule || a.emit_behavioural || a.emit_rtl ||
       a.emit_dot_graph || a.emit_tb_vectors != 0)) {
    usage("--explore takes its flow axis from --flows and evaluates whole "
          "grids: --flow/--n-bits/--pipeline/--partition/--dump-*/--emit-* "
          "do not apply (name 'partitioned' in --flows instead)");
  }
  if (a.partition && a.flow != "all") {
    usage("--partition already selects the 'partitioned' flow; drop --flow");
  }
  if (a.partition && a.sweep_lo != 0) {
    usage("--partition is a point mode; use --latency N (or --explore with "
          "--flows ...,partitioned for sweeps)");
  }
  // --delta/--overhead derive a single '<target>+cli' target from --target;
  // with an explicit --targets axis that derivation would be silently
  // bypassed, so the combination is rejected (name the derived target in
  // --targets-less explore, or register a custom target in code, instead).
  if (a.explore && !a.targets_csv.empty() &&
      (a.delta_override || a.overhead_override)) {
    usage("--delta/--overhead modify --target only; with --explore use them "
          "without --targets (the derived '<target>+cli' becomes the axis)");
  }
  if (a.json && a.csv) usage("--json and --csv are mutually exclusive");
  if (a.flow != "all" && !FlowRegistry::global().contains(a.flow)) {
    usage(("--flow must be one of: all, " + registry_names("flows")).c_str());
  }
  if (!SchedulerRegistry::global().contains(a.scheduler)) {
    usage(("--scheduler must be one of: " + registry_names("schedulers"))
              .c_str());
  }
  if (!TargetRegistry::global().contains(a.target)) {
    usage(("--target must be one of: " + registry_names("targets")).c_str());
  }
  return a;
}

/// Builds the named registry suite's specification, or exits with the
/// available names (the registry_suites() list the tests and benches use).
Dfg suite_spec(const std::string& name) {
  std::vector<std::string> names;
  for (const SuiteEntry& s : registry_suites()) {
    if (s.name == name) return s.build();
    names.push_back(s.name);
  }
  usage(("unknown suite '" + name + "' (available: " + join(names, ", ") + ")")
            .c_str());
}

void print_report(const ImplementationReport& r) {
  TextTable t({"flow", "target", "latency", "cycle (deltas)", "cycle (ns)",
               "exec (ns)", "FU", "regs", "muxes", "ctrl", "total gates"});
  t.add_row({r.flow, r.target, std::to_string(r.latency),
             std::to_string(r.cycle_deltas), fixed(r.cycle_ns, 2),
             fixed(r.execution_ns, 2), std::to_string(r.area.fu_gates),
             std::to_string(r.area.reg_gates),
             std::to_string(r.area.mux_gates),
             std::to_string(r.area.controller_gates),
             std::to_string(r.area.total())});
  std::cout << t;
  std::cout << "datapath: " << describe(r.datapath) << "\n\n";
}

/// Prepends the CLI-side parse wall-clock to every result's timings (and a
/// matching note diagnostic), so `--timing --json` carries the full
/// parse/kernel/.../verify breakdown, not only the flow-side stages.
void add_parse_timing(std::vector<FlowResult>& results, double parse_ms) {
  for (FlowResult& r : results) {
    r.timings.insert(r.timings.begin(), {"parse", parse_ms});
    r.diagnostics.insert(r.diagnostics.begin(),
                         timing_note("parse", parse_ms));
  }
}

/// Prints the scheduling stage's feasibility-oracle work counters (one line
/// under the --timing stage table) for results that carry them.
void print_oracle_counters(const FlowResult& r) {
  if (!r.counters) return;
  const OracleCounters& c = *r.counters;
  std::cout << "oracle (" << r.flow << "): " << c.candidates_evaluated
            << " candidates evaluated, " << c.candidates_probed << " probed, "
            << c.candidates_rejected << " rejected, " << c.candidates_committed
            << " committed, " << c.words_repropagated
            << " words repropagated\n";
}

/// --trace FILE: the whole invocation runs under one TraceScope with a root
/// "cli" span, so every flow stage, scheduler commit batch and cache access
/// nests below it. finish() closes the root, writes the Chrome trace-event
/// document to FILE and yields the {"id":..,"spans":..} fragment the --json
/// output embeds; the destructor finishes the non-JSON paths (one stderr
/// note instead of the fragment). Without --trace every member is inert —
/// stdout is byte-identical to an untraced build.
class CliTrace {
public:
  explicit CliTrace(const std::string& path) : path_(path) {
    if (path_.empty()) return;
    scope_.emplace(true);
    root_.emplace("cli", "cli");
  }
  ~CliTrace() { finish(); }
  CliTrace(const CliTrace&) = delete;
  CliTrace& operator=(const CliTrace&) = delete;

  bool armed() const { return !path_.empty(); }

  std::string finish() {
    if (!scope_) return fragment_;
    root_.reset();
    const std::uint64_t id = scope_->trace_id();
    const std::vector<TraceSpan> spans = TraceSession::global().collect(id);
    scope_.reset();
    std::ofstream out(path_);
    out << TraceSession::chrome_json(spans) << '\n';
    if (!out) {
      std::cerr << "warning: cannot write trace to '" << path_ << "'\n";
    } else {
      std::cerr << "trace: " << spans.size() << " spans -> " << path_ << '\n';
    }
    fragment_ = strformat("{\"id\":%llu,\"spans\":%zu}",
                          static_cast<unsigned long long>(id), spans.size());
    return fragment_;
  }

private:
  std::string path_;
  std::string fragment_;  ///< cached so finish() is idempotent
  std::optional<TraceScope> scope_;
  std::optional<ScopedSpan> root_;
};

/// --metrics: dumps the process-global registry as Prometheus text
/// exposition to stderr when the invocation ends, whatever the exit path
/// (stderr so --json stdout stays a single parseable document).
struct MetricsDump {
  bool armed = false;
  ~MetricsDump() {
    if (armed) std::cerr << MetricsRegistry::global().exposition();
  }
};

/// Emits a --json document: the plain body, or — under --trace —
/// {"results":<body>,"trace":{"id":..,"spans":..}} so scripted consumers get
/// the trace handle in-band. Byte-stable (the body alone) when tracing is
/// off.
void print_json_doc(CliTrace& trace, const std::string& body) {
  if (trace.armed()) {
    std::cout << "{\"results\":" << body << ",\"trace\":" << trace.finish()
              << "}\n";
  } else {
    std::cout << body << '\n';
  }
}

/// Prints Error diagnostics to stderr; returns false when any are present.
bool check(const std::vector<FlowResult>& results) {
  bool ok = true;
  for (const FlowResult& r : results) {
    if (r.ok) continue;
    ok = false;
    for (const FlowDiagnostic& d : r.diagnostics) {
      if (d.severity == DiagSeverity::Error) {
        std::cerr << "error: flow '" << r.flow << "' [" << d.stage
                  << "]: " << d.message << '\n';
      }
    }
  }
  return ok;
}

} // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);

  // Fault injection arms before any work: env first (the chaos harness's
  // channel into subprocesses), then the explicit flag on top.
  try {
    arm_failpoints_from_env();
    if (!args.failpoints.empty()) arm_failpoints(args.failpoints);
  } catch (const Error& e) {
    usage(e.what());
  }

  // More workers than cores adds scheduling contention, not throughput —
  // worth a note (run_batch still clamps its pool to the job count).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (args.workers > hw) {
    std::cerr << "note: --workers " << args.workers
              << " exceeds hardware concurrency (" << hw
              << "); extra threads add contention, not throughput\n";
  }

  if (args.serve) {
    Server server(ServeOptions{
        .workers = args.workers,
        .cache_shards = args.cache_shards,
        .cache_max_bytes = static_cast<std::size_t>(args.cache_mb) << 20,
        .default_deadline_ms = args.deadline_ms,
        .max_active = args.admit_max.value_or(0),
        .max_queue = args.admit_queue.value_or(16),
        .storm_evictions = args.storm_evictions.value_or(0)});
    if (args.serve_port) {
      return server.serve_tcp(*args.serve_port, std::cerr);
    }
    return server.serve(std::cin, std::cout);
  }

  // Observability arms before any flow work: --metrics flips the process-
  // global registry live, --trace opens the invocation-wide scope (the root
  // "cli" span every stage span nests under). Both default off, and off
  // means every instrumented site is a relaxed-load no-op.
  if (args.metrics) MetricsRegistry::arm_global();
  const MetricsDump metrics_dump{args.metrics};
  CliTrace trace(args.trace_path);

  // --delta / --overhead derive a modified target and register it next to
  // the builtins — the same registration path user code uses.
  if (args.delta_override || args.overhead_override) {
    Target derived = resolve_target(args.target);
    derived.name = args.target + "+cli";
    derived.description = "CLI-derived from '" + args.target + "'";
    if (args.delta_override) derived.delay.delta_ns = *args.delta_override;
    if (args.overhead_override) {
      derived.delay.sequential_overhead_ns = *args.overhead_override;
    }
    TargetRegistry::global().register_target(derived);
    args.target = derived.name;
  }
  const Target target = resolve_target(args.target);

  std::stringstream buffer;
  if (args.suite.empty()) {
    std::ifstream file(args.spec_path);
    if (!file) {
      std::cerr << "error: cannot open '" << args.spec_path << "'\n";
      return 1;
    }
    buffer << file.rdbuf();
  }

  try {
    const auto parse_t0 = std::chrono::steady_clock::now();
    const Dfg spec = [&] {
      // Spans the spec-obtaining step (DSL parse or suite build) so a traced
      // invocation carries the same "parse" stage the --timing table does.
      ScopedSpan span("parse", "flow");
      return args.suite.empty() ? parse_spec(buffer.str())
                                : suite_spec(args.suite);
    }();
    const double parse_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - parse_t0)
            .count();
    if (!args.json && !args.csv) {
      std::cout << "parsed '" << spec.name() << "': " << summarize(spec);
      if (args.timing) std::cout << strformat(" (%.3f ms)", parse_ms);
      std::cout << "\n\n";
    }
    if (args.dump_dfg) {
      std::cout << to_string(spec) << '\n';
    }

    FlowOptions opt;
    opt.narrow = args.narrow;
    opt.timing = args.timing;
    const Session session({.workers = args.workers});

    if (args.explore) {
      // Design-space exploration: flows x schedulers x targets x latencies
      // through hls::Explorer (shared ArtifactCache + §3.2 bound pruning +
      // live Pareto front). Emitter/dump flags are point-mode only.
      ExploreRequest ereq;
      ereq.spec = spec;
      if (!args.flows_csv.empty()) ereq.flows = split(args.flows_csv, ',');
      ereq.schedulers = args.schedulers_csv.empty()
                            ? std::vector<std::string>{args.scheduler}
                            : split(args.schedulers_csv, ',');
      ereq.targets = args.targets_csv.empty()
                         ? std::vector<std::string>{args.target}
                         : split(args.targets_csv, ',');
      ereq.latency_lo = args.sweep_lo != 0 ? args.sweep_lo : args.latency;
      ereq.latency_hi = args.sweep_lo != 0 ? args.sweep_hi : args.latency;
      ereq.options = opt;
      ereq.weights = args.weights;
      ereq.budget = args.budget;
      ereq.prune = !args.no_prune;
      ereq.workers = args.workers;
      const ExploreResult er = Explorer().run(ereq);
      if (args.json) {
        print_json_doc(trace, to_json(er));
      } else if (args.csv) {
        std::cout << to_csv(er);
      } else {
        std::size_t budget_pruned = 0;
        for (const PrunedPoint& p : er.pruned) {
          if (p.reason == "budget") ++budget_pruned;
        }
        std::cout << "explored " << er.evaluated << " points (" << er.failed
                  << " failed, " << er.pruned.size() - budget_pruned
                  << " pruned as dominated, " << budget_pruned
                  << " over budget)";
        if (args.timing) std::cout << strformat(" in %.1f ms", er.wall_ms);
        std::cout << "\n\n";
        if (!er.frontier.empty()) {
          TextTable t({"flow", "scheduler", "target", "latency", "cycle (ns)",
                       "exec (ns)", "area (gates)", "score", ""});
          for (const std::size_t i : er.frontier) {
            const ExplorePoint& p = er.points[i];
            t.add_row({p.flow, p.scheduler, p.target,
                       std::to_string(p.latency),
                       fixed(p.objectives.cycle_ns, 2),
                       fixed(p.objectives.execution_ns, 1),
                       std::to_string(p.objectives.area_gates),
                       fixed(p.score, 2),
                       er.best && *er.best == i ? "<- best" : ""});
          }
          std::cout << "Pareto frontier (" << er.frontier.size() << " of "
                    << er.evaluated << " points):\n"
                    << t;
        }
        const CacheStats::Counter total = er.cache_stats.total();
        std::cout << "\nartifact cache: " << total.hits << " hits, "
                  << total.misses << " misses ("
                  << pct(total.hit_rate()) << " hit rate)\n";
      }
      for (const FlowDiagnostic& d : er.diagnostics) {
        if (d.severity == DiagSeverity::Error) {
          std::cerr << "error: explore [" << d.stage << "]: " << d.message
                    << '\n';
        }
      }
      return er.ok && !er.frontier.empty() ? 0 : 1;
    }

    if (args.sweep_lo != 0) {
      // Latency sweep (Fig. 4): original vs optimized per latency, executed
      // as one concurrent batch of 2 * (hi - lo + 1) independent jobs.
      std::vector<FlowRequest> requests;
      for (unsigned lat = args.sweep_lo; lat <= args.sweep_hi; ++lat) {
        requests.push_back(
            {spec, "original", lat, 0, opt, args.scheduler, args.target});
        // --n-bits is a single-latency override; a fixed budget across the
        // sweep would make the low-latency points infeasible.
        requests.push_back(
            {spec, "optimized", lat, 0, opt, args.scheduler, args.target});
      }
      std::vector<FlowResult> results = session.run_batch(requests);
      if (args.timing) add_parse_timing(results, parse_ms);
      const bool all_ok = check(results);
      if (args.json) {
        // Failed jobs still serialize (ok:false + diagnostics) so scripted
        // consumers see the structured error, not just the exit status.
        print_json_doc(trace, to_json(results));
        return all_ok ? 0 : 1;
      }
      if (!all_ok) return 1;
      TextTable t({"latency", "orig cycle (ns)", "opt cycle (ns)", "saved",
                   "opt exec (ns)", "opt area (gates)"});
      for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
        const ImplementationReport& orig = results[i].report;
        const ImplementationReport& o = results[i + 1].report;
        t.add_row({std::to_string(orig.latency), fixed(orig.cycle_ns, 2),
                   fixed(o.cycle_ns, 2), pct(o.cycle_saving_vs(orig)),
                   fixed(o.execution_ns, 1), std::to_string(o.area.total())});
      }
      std::cout << t;
      if (args.timing) {
        TextTable tt({"flow", "latency", "stage", "wall-clock (ms)"});
        for (const FlowResult& r : results) {
          for (const StageTiming& st : r.timings) {
            tt.add_row({r.flow, std::to_string(r.report.latency), st.stage,
                        fixed(st.ms, 3)});
          }
        }
        std::cout << '\n' << tt;
        for (const FlowResult& r : results) print_oracle_counters(r);
      }
      return 0;
    }

    std::vector<FlowRequest> requests;
    const std::vector<std::string> flow_names =
        args.partition
            ? std::vector<std::string>{"partitioned"}
        : args.flow == "all"
            ? std::vector<std::string>{"original", "blc", "optimized"}
            : std::vector<std::string>{args.flow};
    for (const std::string& name : flow_names) {
      const bool budgeted = name == "optimized" || name == "partitioned";
      requests.push_back({spec, name, args.latency,
                          budgeted ? args.n_bits : 0, opt, args.scheduler,
                          args.target});
    }
    std::vector<FlowResult> results = session.run_batch(requests);
    if (args.timing) add_parse_timing(results, parse_ms);

    // Print every successful flow before reporting failures, so one
    // infeasible flow does not hide the others' reports.
    for (const FlowResult& r : results) {
      if (!r.ok) continue;
      if (!args.json) print_report(r.report);
      if (r.partition && !args.json) {
        // The composition summary of the partitioned flow: how the shared
        // latency budget was split over the kernel DAG.
        std::cout << "partition: " << r.partition->kernels.size()
                  << " operative kernel"
                  << (r.partition->kernels.size() == 1 ? "" : "s") << ", "
                  << r.partition->cut_edges << " cut edge"
                  << (r.partition->cut_edges == 1 ? "" : "s")
                  << ", composed latency " << r.partition->composed_latency
                  << " cycles\n";
        TextTable pt({"kernel", "nodes", "adds", "critical (bits)", "latency",
                      "n_bits", "start cycle"});
        for (const PartitionKernelSummary& k : r.partition->kernels) {
          pt.add_row({k.name, std::to_string(k.node_count),
                      std::to_string(k.add_count), std::to_string(k.critical),
                      std::to_string(k.latency), std::to_string(k.n_bits),
                      std::to_string(k.start_cycle)});
        }
        std::cout << pt << '\n';
      }
      if (args.timing && !args.json && !r.timings.empty()) {
        TextTable t({"flow", "stage", "wall-clock (ms)"});
        for (const StageTiming& st : r.timings) {
          t.add_row({r.flow, st.stage, fixed(st.ms, 3)});
        }
        std::cout << t;
        print_oracle_counters(r);
        std::cout << '\n';
      }
      if (r.flow != "optimized") continue;

      // The optimized flow carries artefacts the emitters feed on.
      if (args.pipeline && r.schedule) {
        const PipelineReport p =
            analyze_pipelining(*r.schedule, r.report.datapath, target.delay);
        if (args.json) {
          std::cout << to_json(p) << '\n';
        } else {
          std::cout << "pipelining: min II = " << p.min_ii << " cycles, "
                    << strformat("%.2f", p.throughput_per_us())
                    << " iterations/us, speedup x"
                    << strformat("%.2f", p.speedup()) << "\n\n";
        }
      }
      if (args.dump_dfg && r.kernel) {
        std::cout << "kernel form:\n" << to_string(*r.kernel) << '\n';
      }
      if (args.dump_schedule && r.transform && r.schedule) {
        std::cout << to_string(r.transform->spec, r.schedule->schedule)
                  << '\n';
      }
      if (args.emit_behavioural && r.transform) {
        std::cout << emit_vhdl(r.transform->spec, "beh_opt") << '\n';
      }
      if (args.emit_rtl && r.transform && r.schedule) {
        std::cout << emit_rtl_vhdl(*r.transform, *r.schedule,
                                   r.report.datapath)
                  << '\n';
      }
      if (args.emit_dot_graph && r.transform) {
        std::cout << emit_dot(r.transform->spec) << '\n';
      }
      if (args.emit_tb_vectors > 0 && r.transform) {
        std::cout << emit_testbench(*r.transform, args.emit_tb_vectors, 1)
                  << '\n';
      }
    }
    if (args.json) {
      print_json_doc(trace, to_json(results));
    }
    if (!check(results)) return 1;
  } catch (const ParseError& e) {
    std::cerr << args.spec_path << ":" << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
