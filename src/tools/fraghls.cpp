// fraghls — command-line driver for the presynthesis transformation flow.
//
//   fraghls <spec.hls> --latency N [options]
//
// Reads a behavioural specification in the DSL (see examples/specs/), runs
// the requested flows and prints schedules, reports, and optionally the
// transformed behavioural VHDL or the structural RTL.
//
//   --latency N        time constraint in cycles (required)
//   --flow F           original | blc | optimized | all   (default: all)
//   --n-bits N         override the cycle budget estimate (optimized flow)
//   --dump-dfg         print the parsed DFG and its kernel form
//   --dump-schedule    print the optimized schedule (Fig. 2 b style)
//   --emit-vhdl        print the transformed behavioural VHDL (Fig. 2 a)
//   --emit-rtl         print the structural RTL (FSM + datapath)
//   --emit-dot         print the transformed DFG as Graphviz dot
//   --emit-tb N        print a self-checking VHDL testbench with N vectors
//   --sweep LO..HI     latency sweep (Fig. 4 style) instead of one latency
//   --narrow           width-narrow the kernel before transforming
//   --scheduler S      list | forcedirected                  (default: list)
//   --pipeline         report the minimal initiation interval (optimized)
//   --json             machine-readable report output
//   --delta NS         1-bit adder delay in ns        (default 0.5)
//   --overhead NS      register/clock overhead in ns  (default 1.4)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "flow/flow.hpp"
#include "flow/json.hpp"
#include "flow/pipeline.hpp"
#include "ir/dot.hpp"
#include "ir/print.hpp"
#include "parser/parser.hpp"
#include "rtl/rtl_emit.hpp"
#include "rtl/testbench.hpp"
#include "rtl/vhdl.hpp"
#include "sched/schedule.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace hls;

namespace {

struct Args {
  std::string spec_path;
  unsigned latency = 0;
  unsigned sweep_lo = 0, sweep_hi = 0;
  std::string flow = "all";
  unsigned n_bits = 0;
  bool dump_dfg = false;
  bool dump_schedule = false;
  bool emit_behavioural = false;
  bool emit_rtl = false;
  bool emit_dot_graph = false;
  unsigned emit_tb_vectors = 0;
  bool narrow = false;
  std::string scheduler = "list";
  bool pipeline = false;
  bool json = false;
  DelayModel delay;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::cerr << "error: " << msg << "\n\n";
  std::cerr <<
      "usage: fraghls <spec.hls> --latency N [--flow original|blc|optimized|all]\n"
      "               [--n-bits N] [--dump-dfg] [--dump-schedule]\n"
      "               [--emit-vhdl] [--emit-rtl] [--delta NS] [--overhead NS]\n";
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--latency") {
      a.latency = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--sweep") {
      const std::string v = value();
      const std::size_t dots = v.find("..");
      if (dots == std::string::npos) usage("--sweep expects LO..HI");
      a.sweep_lo = static_cast<unsigned>(std::stoul(v.substr(0, dots)));
      a.sweep_hi = static_cast<unsigned>(std::stoul(v.substr(dots + 2)));
      if (a.sweep_lo == 0 || a.sweep_hi < a.sweep_lo) {
        usage("--sweep bounds must satisfy 1 <= LO <= HI");
      }
    } else if (arg == "--flow") {
      a.flow = value();
    } else if (arg == "--n-bits") {
      a.n_bits = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--dump-dfg") {
      a.dump_dfg = true;
    } else if (arg == "--dump-schedule") {
      a.dump_schedule = true;
    } else if (arg == "--emit-vhdl") {
      a.emit_behavioural = true;
    } else if (arg == "--emit-rtl") {
      a.emit_rtl = true;
    } else if (arg == "--emit-dot") {
      a.emit_dot_graph = true;
    } else if (arg == "--emit-tb") {
      a.emit_tb_vectors = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--narrow") {
      a.narrow = true;
    } else if (arg == "--scheduler") {
      a.scheduler = value();
    } else if (arg == "--pipeline") {
      a.pipeline = true;
    } else if (arg == "--json") {
      a.json = true;
    } else if (arg == "--delta") {
      a.delay.delta_ns = std::stod(value());
    } else if (arg == "--overhead") {
      a.delay.sequential_overhead_ns = std::stod(value());
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      usage(("unknown option " + arg).c_str());
    } else if (a.spec_path.empty()) {
      a.spec_path = arg;
    } else {
      usage("more than one spec file given");
    }
  }
  if (a.spec_path.empty()) usage("no spec file given");
  if (a.latency == 0 && a.sweep_lo == 0) {
    usage("--latency N or --sweep LO..HI is required");
  }
  if (a.flow != "all" && a.flow != "original" && a.flow != "blc" &&
      a.flow != "optimized") {
    usage("--flow must be original, blc, optimized or all");
  }
  if (a.scheduler != "list" && a.scheduler != "forcedirected") {
    usage("--scheduler must be list or forcedirected");
  }
  return a;
}

void print_report(const ImplementationReport& r) {
  TextTable t({"flow", "latency", "cycle (deltas)", "cycle (ns)", "exec (ns)",
               "FU", "regs", "muxes", "ctrl", "total gates"});
  t.add_row({r.flow, std::to_string(r.latency), std::to_string(r.cycle_deltas),
             fixed(r.cycle_ns, 2), fixed(r.execution_ns, 2),
             std::to_string(r.area.fu_gates), std::to_string(r.area.reg_gates),
             std::to_string(r.area.mux_gates),
             std::to_string(r.area.controller_gates),
             std::to_string(r.area.total())});
  std::cout << t;
  std::cout << "datapath: " << describe(r.datapath) << "\n\n";
}

} // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);

  std::ifstream file(args.spec_path);
  if (!file) {
    std::cerr << "error: cannot open '" << args.spec_path << "'\n";
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  try {
    const Dfg spec = parse_spec(buffer.str());
    if (!args.json) {
      std::cout << "parsed '" << spec.name() << "': " << summarize(spec)
                << "\n\n";
    }
    if (args.dump_dfg) {
      std::cout << to_string(spec) << '\n';
    }

    FlowOptions opt;
    opt.delay = args.delay;
    opt.narrow = args.narrow;
    opt.scheduler = args.scheduler == "forcedirected"
                        ? FragScheduler::ForceDirected
                        : FragScheduler::List;
    std::vector<ImplementationReport> reports;

    if (args.sweep_lo != 0) {
      // Latency sweep: one row per latency, original vs optimized (Fig. 4).
      TextTable t({"latency", "orig cycle (ns)", "opt cycle (ns)", "saved",
                   "opt exec (ns)", "opt area (gates)"});
      for (unsigned lat = args.sweep_lo; lat <= args.sweep_hi; ++lat) {
        const ImplementationReport orig = run_conventional_flow(spec, lat, opt);
        const OptimizedFlowResult o = run_optimized_flow(spec, lat, opt);
        reports.push_back(orig);
        reports.push_back(o.report);
        t.add_row({std::to_string(lat), fixed(orig.cycle_ns, 2),
                   fixed(o.report.cycle_ns, 2),
                   pct(o.report.cycle_saving_vs(orig)),
                   fixed(o.report.execution_ns, 1),
                   std::to_string(o.report.area.total())});
      }
      if (args.json) {
        std::cout << to_json(reports) << '\n';
      } else {
        std::cout << t;
      }
      return 0;
    }

    if (args.flow == "all" || args.flow == "original") {
      reports.push_back(run_conventional_flow(spec, args.latency, opt));
      if (!args.json) print_report(reports.back());
    }
    if (args.flow == "all" || args.flow == "blc") {
      reports.push_back(run_blc_flow(spec, args.latency, opt));
      if (!args.json) print_report(reports.back());
    }
    if (args.flow == "all" || args.flow == "optimized") {
      const OptimizedFlowResult o =
          run_optimized_flow(spec, args.latency, opt, args.n_bits);
      reports.push_back(o.report);
      if (!args.json) print_report(o.report);
      if (args.pipeline) {
        const PipelineReport p =
            analyze_pipelining(o.schedule, o.report.datapath, opt.delay);
        if (args.json) {
          std::cout << to_json(p) << '\n';
        } else {
          std::cout << "pipelining: min II = " << p.min_ii << " cycles, "
                    << strformat("%.2f", p.throughput_per_us())
                    << " iterations/us, speedup x"
                    << strformat("%.2f", p.speedup()) << "\n\n";
        }
      }
      if (args.dump_dfg) {
        std::cout << "kernel form:\n" << to_string(o.kernel) << '\n';
      }
      if (args.dump_schedule) {
        std::cout << to_string(o.transform.spec, o.schedule.schedule) << '\n';
      }
      if (args.emit_behavioural) {
        std::cout << emit_vhdl(o.transform.spec, "beh_opt") << '\n';
      }
      if (args.emit_rtl) {
        std::cout << emit_rtl_vhdl(o.transform, o.schedule, o.report.datapath)
                  << '\n';
      }
      if (args.emit_dot_graph) {
        std::cout << emit_dot(o.transform.spec) << '\n';
      }
      if (args.emit_tb_vectors > 0) {
        std::cout << emit_testbench(o.transform, args.emit_tb_vectors, 1) << '\n';
      }
    }
    if (args.json) {
      std::cout << to_json(reports) << '\n';
    }
  } catch (const ParseError& e) {
    std::cerr << args.spec_path << ":" << e.what() << '\n';
    return 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
