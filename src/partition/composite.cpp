#include "partition/composite.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "alloc/bitlevel.hpp"
#include "flow/session.hpp"
#include "rtl/cycle_sim.hpp"
#include "sched/core.hpp"
#include "support/strings.hpp"

namespace hls {

std::optional<std::string> validate_budget_split(
    const KernelPartition& p, const std::vector<unsigned>& criticals,
    const BudgetSplit& split, unsigned total_latency) {
  if (split.composed_latency <= total_latency) return std::nullopt;
  // One aggregated message naming EVERY kernel whose proportional share
  // fails the shared latency-range validation (raw == 0 trips lo >= 1) —
  // never just the first offender.
  std::string bad;
  for (std::size_t k = 0; k < p.kernels.size(); ++k) {
    if (!validate_latency_range(split.raw[k], total_latency)) continue;
    if (!bad.empty()) bad += ", ";
    bad += strformat("%s (critical %u bits, proportional share %u)",
                     p.kernels[k].spec.name().c_str(), criticals[k],
                     split.raw[k]);
  }
  if (bad.empty()) bad = "(every kernel already at its 1-cycle minimum)";
  return strformat(
      "latency %u cannot fit the composed kernel path (needs %u cycles); "
      "infeasible kernels: %s",
      total_latency, split.composed_latency, bad.c_str());
}

CompositeSchedule compose_schedule(const Dfg& kernel_form, unsigned latency,
                                   const std::string& scheduler,
                                   const DelayModel& delay,
                                   unsigned n_bits_override) {
  CompositeSchedule cs;
  cs.partition =
      std::make_shared<const KernelPartition>(partition_kernel(kernel_form));
  const KernelPartition& p = *cs.partition;
  std::vector<TransformPrep> preps;
  preps.reserve(p.kernels.size());
  cs.criticals.reserve(p.kernels.size());
  for (const PartitionKernel& pk : p.kernels) {
    preps.push_back(prepare_transform(pk.spec));
    cs.criticals.push_back(preps.back().critical);
  }
  cs.split = split_latency_budget(p, cs.criticals, latency);
  if (const std::optional<std::string> bad =
          validate_budget_split(p, cs.criticals, cs.split, latency)) {
    throw Error(*bad);
  }
  cs.bound = price_partition(cs.criticals, cs.split, n_bits_override, delay);
  cs.runs.reserve(p.kernels.size());
  for (std::size_t k = 0; k < p.kernels.size(); ++k) {
    KernelRun run;
    run.latency = cs.split.latency[k];
    run.n_bits = cs.bound.n_bits[k];
    run.start_cycle = cs.split.start_cycle[k];
    run.transform = std::make_shared<const TransformResult>(
        transform_prepared(preps[k], run.latency, run.n_bits));
    run.schedule = std::make_shared<const FragSchedule>(
        run_scheduler(scheduler, *run.transform));
    run.datapath = std::make_shared<const Datapath>(
        allocate_bitlevel(*run.transform, *run.schedule));
    cs.runs.push_back(std::move(run));
  }
  return cs;
}

Datapath merged_datapath(const CompositeSchedule& cs) {
  Datapath out;
  for (const KernelRun& run : cs.runs) {
    const Datapath& dp = *run.datapath;
    const unsigned off = run.start_cycle;
    const unsigned reg_base = static_cast<unsigned>(out.regs.size());
    for (FuInstance fu : dp.fus) {
      for (auto& [cycle, node] : fu.bound) cycle += off;
      out.fus.push_back(std::move(fu));
    }
    for (RegInstance reg : dp.regs) {
      reg.first_boundary += off;
      reg.last_boundary += off;
      out.regs.push_back(reg);
    }
    out.muxes.insert(out.muxes.end(), dp.muxes.begin(), dp.muxes.end());
    for (StoredRun sr : dp.stored) {
      sr.produced += off;
      sr.last_use += off;
      sr.reg += reg_base;
      out.stored.push_back(sr);
    }
    out.control_signals += dp.control_signals;
  }
  out.states = cs.bound.composed_latency;
  return out;
}

AreaBreakdown composed_area(const CompositeSchedule& cs, const GateModel& gm) {
  AreaBreakdown total;
  for (const KernelRun& run : cs.runs) {
    const AreaBreakdown a = area_of(*run.datapath, gm);
    total.fu_gates += a.fu_gates;
    total.reg_gates += a.reg_gates;
    total.mux_gates += a.mux_gates;
    total.controller_gates += a.controller_gates;
  }
  return total;
}

OutputValues simulate_composite(const CompositeSchedule& cs,
                                const InputValues& inputs) {
  const KernelPartition& p = *cs.partition;
  HLS_REQUIRE(cs.runs.size() == p.kernels.size(),
              "composite schedule must carry one run per kernel");
  std::map<std::uint32_t, std::uint64_t> boundary;  // parent node -> value
  OutputValues out;
  for (std::size_t k = 0; k < p.kernels.size(); ++k) {
    const PartitionKernel& pk = p.kernels[k];
    InputValues sub_in;
    std::set<std::string> import_names;
    for (const PartitionKernel::Port& port : pk.imports) {
      const auto it = boundary.find(port.parent.index);
      HLS_REQUIRE(it != boundary.end(),
                  "boundary value not yet produced: " + port.name);
      sub_in[port.name] = it->second;
      import_names.insert(port.name);
    }
    for (const NodeId id : pk.spec.inputs()) {
      const std::string& name = pk.spec.node(id).name;
      if (import_names.count(name) != 0) continue;
      const auto it = inputs.find(name);
      HLS_REQUIRE(it != inputs.end(), "missing input value: " + name);
      sub_in[name] = it->second;
    }
    const KernelRun& run = cs.runs[k];
    const OutputValues sub_out =
        simulate_datapath(*run.transform, *run.schedule, *run.datapath, sub_in);
    std::set<std::string> export_names;
    for (const PartitionKernel::Port& port : pk.exports) {
      boundary[port.parent.index] = sub_out.at(port.name);
      export_names.insert(port.name);
    }
    for (const auto& [name, value] : sub_out) {
      if (export_names.count(name) == 0) out[name] = value;
    }
  }
  return out;
}

} // namespace hls
