#pragma once
// Multi-kernel partitioning — splitting an extracted specification into
// maximal operative kernels joined only by glue.
//
// Every layer below the flow engine (transform, SchedulerCore, the bit-slot
// oracle, bit-level allocation) works on ONE operative kernel. Real designs
// are several kernels joined by glue logic: kernel extraction (§3.1) leaves
// a Dfg whose Add nodes fall into connected components under *direct*
// Add -> Add operand edges (sum feeds and carry chains), with bitwise glue
// and concats in between. partition_kernel() materializes that structure:
//
//   * every Add belongs to the component of its direct Add neighbours —
//     a cut never severs an Add -> Add edge (carry chains stay whole);
//   * glue/concat/output nodes are pulled into the component of their first
//     assigned producer (or, for glue feeding a kernel from pure inputs,
//     their first assigned consumer), so every cut edge has glue or a
//     boundary value on at least one side — never Add -> Add;
//   * components whose glue paths form a cycle at kernel granularity are
//     merged (strongly connected components collapse), so the kernel graph
//     is a DAG by construction;
//   * kernels are renumbered topologically (ties by smallest member node),
//     so kernel i only ever feeds kernel j > i.
//
// Each kernel becomes a self-contained kernel-form Dfg: primary inputs and
// constants are replicated, values crossing a cut become an Output named
// "__x<node>" in the producer kernel and an Input of the same name in every
// consumer kernel. A single-component specification is returned VERBATIM
// (kernels[0].spec is the input graph, same digest), which is what keeps
// the partitioned flow bit-identical to the optimized flow — shared
// ArtifactCache keys included — on single-kernel specs.
//
// split_latency_budget() divides one latency constraint across the kernel
// DAG in proportion to each kernel's §3.2 critical time, guaranteeing the
// composed critical path fits the constraint whenever every kernel can get
// at least one cycle; validate_budget_split() reuses the flow engine's
// validate_latency_range on every kernel share and reports ALL infeasible
// kernels at once (satellite: no first-failure diagnostics).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "ir/dfg.hpp"
#include "timing/delay_model.hpp"

namespace hls {

/// One operative kernel of a partition: a self-contained kernel-form Dfg
/// plus its provenance in the parent graph and its boundary ports.
struct PartitionKernel {
  /// Self-contained kernel-form specification (verbatim parent graph when
  /// the partition is single()).
  Dfg spec;
  /// Parent node ids assigned to this kernel (ascending; computation and
  /// structural members — replicated Inputs/Consts are not listed).
  std::vector<NodeId> nodes;
  std::size_t add_count = 0;

  /// One boundary port: the "__x<node>" port name and the parent node whose
  /// value crosses the cut there.
  struct Port {
    std::string name;
    NodeId parent;
  };
  std::vector<Port> imports;  ///< boundary values this kernel consumes
  std::vector<Port> exports;  ///< boundary values this kernel produces
};

/// The partition of one kernel-form specification into operative kernels.
struct KernelPartition {
  std::vector<PartitionKernel> kernels;

  /// One cut edge per (exported parent value, consumer kernel). The
  /// legality invariant: `from < to` for every edge (the kernel graph is a
  /// renumbered DAG) and the producer is never consumed by a cross-kernel
  /// Add through a direct Add -> Add operand (verify_partition checks it).
  struct CutEdge {
    NodeId producer;    ///< parent node whose value crosses the cut
    unsigned from = 0;  ///< producer kernel index
    unsigned to = 0;    ///< consumer kernel index
  };
  std::vector<CutEdge> cut_edges;

  bool single() const { return kernels.size() == 1; }

  /// Deduplicated kernel-graph edges (from, to), sorted. Derived from
  /// cut_edges; the budget split walks these.
  std::vector<std::pair<unsigned, unsigned>> edges() const;
};

/// Partitions a kernel-form specification. Pure; deterministic. Throws
/// hls::Error when `kernel` is not kernel-form. A specification whose Adds
/// form one component (or that has no Adds at all) comes back as a
/// single-kernel partition holding the input graph verbatim.
KernelPartition partition_kernel(const Dfg& kernel);

/// Re-checks every partition invariant against the parent graph: complete
/// single assignment of all non-Input/Const nodes, no Add -> Add operand
/// edge crossing kernels, topological kernel numbering (every cut edge
/// from < to), boundary port consistency, and structural validity of every
/// per-kernel spec. Throws hls::Error with a description on failure.
void verify_partition(const KernelPartition& p, const Dfg& parent);

/// One shared latency constraint divided over the kernel DAG.
struct BudgetSplit {
  /// Per-kernel cycle budget (>= 1 each).
  std::vector<unsigned> latency;
  /// Proportional share before the >= 1 floor was applied; 0 marks a kernel
  /// the constraint cannot accommodate (validate_budget_split reports it).
  std::vector<unsigned> raw;
  /// Earliest start cycle of each kernel (longest predecessor path).
  std::vector<unsigned> start_cycle;
  /// Critical inter-kernel path in cycles = max_k start_cycle[k]+latency[k].
  unsigned composed_latency = 0;
};

/// Splits `total_latency` cycles across the kernels in proportion to their
/// §3.2 critical times (`criticals[k]`, chained bits, one per kernel):
/// kernel k's share is floor(total * c_k / T_k) where T_k is the heaviest
/// critical-time path through k — a split under which every kernel-DAG path
/// sums to <= total by construction. Shares are floored at 1 cycle, then
/// leftover slack is redistributed deterministically (+1 to the most
/// starved kernel whose critical path still fits) until the composed
/// latency meets the constraint exactly or no kernel can grow. For a
/// single-kernel partition the split is {total_latency} verbatim.
BudgetSplit split_latency_budget(const KernelPartition& p,
                                 const std::vector<unsigned>& criticals,
                                 unsigned total_latency);

/// The one shared per-kernel feasibility check (satellite: no first-failure
/// diagnostics): runs the flow engine's latency-range validation over every
/// kernel share and, when the composed schedule cannot fit, returns ONE
/// message naming every infeasible kernel with its critical time. nullopt
/// means the split is feasible. Defined in partition/composite.cpp (it
/// reuses validate_latency_range of session.hpp, the one validation path).
std::optional<std::string> validate_budget_split(
    const KernelPartition& p, const std::vector<unsigned>& criticals,
    const BudgetSplit& split, unsigned total_latency);

/// §3.2-sound composed pricing of a partitioned point — the ONE source of
/// truth shared by the partitioned flow's report and the Explorer's bound
/// pruning, so a pruned candidate is priced exactly as running it would.
struct PartitionBound {
  unsigned composed_latency = 0;  ///< critical inter-kernel path, cycles
  unsigned max_deltas = 0;  ///< clock: max over kernels of adder_depth(n_bits)
  std::vector<unsigned> n_bits;  ///< per-kernel resolved cycle budgets
};

/// Prices a feasible split: per-kernel budgets via estimate_cycle_budget
/// (or the override verbatim), clock = the widest kernel window's delta
/// depth under `delay`, latency = the composed critical path.
PartitionBound price_partition(const std::vector<unsigned>& criticals,
                               const BudgetSplit& split,
                               unsigned n_bits_override,
                               const DelayModel& delay);

} // namespace hls
