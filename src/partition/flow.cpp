// flows::partitioned — the multi-kernel composition pipeline (registered
// under "partitioned" in FlowRegistry::global()).
//
// Stage sequence:
//
//   kernel -> [narrow] -> partition -> per-kernel {transform, schedule,
//   allocate, [verify]} -> composed report
//
// The kernel/narrow stages are the optimized flow's, call for call. The
// partition stage splits the kernel into maximal operative kernels
// (partition/partition.hpp), divides the latency budget in proportion to
// each kernel's §3.2 critical time and validates EVERY share through the
// one shared validate_latency_range path — an infeasible constraint raises
// one aggregated FlowStageError("partition") naming all offending kernels.
//
// Single-kernel specifications short-circuit to the optimized flow's exact
// tail, keyed on the request spec, so a shared StageCache serves the same
// entries to both flows and the schedule/report/JSON stay bit-identical to
// flows::optimized (only the flow label differs). Multi-kernel runs key
// every per-kernel stage on the sub-kernel's OWN content digest: editing
// one kernel re-runs only that kernel's column of the cache.

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "alloc/bitlevel.hpp"
#include "flow/session.hpp"
#include "kernel/extract.hpp"
#include "kernel/narrow.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "partition/composite.hpp"
#include "sched/core.hpp"
#include "sched/schedule.hpp"
#include "support/failpoint.hpp"
#include "support/strings.hpp"

namespace hls {

namespace {

// The stage helpers below mirror flow/session.cpp's file-static ones (same
// names, same behaviour) so the partitioned flow reports failures, timings
// and failpoints exactly like the builtin flows it composes.

void stage_failpoint(const char* name) {
  if (!failpoints_armed()) return;
  failpoint(("flow." + std::string(name)).c_str());
}

template <typename F>
auto stage(const char* name, F&& f) {
  try {
    return std::forward<F>(f)();
  } catch (const CancelledError&) {
    throw;
  } catch (const FlowStageError&) {
    throw;
  } catch (const Error& e) {
    throw FlowStageError(name, e.what(), e.context());
  }
}

template <typename F>
auto timed_stage(FlowResult& out, const FlowRequest& req, const char* name,
                 F&& f) {
  req.cancel.poll();
  stage_failpoint(name);
  ScopedSpan span(name, "flow");
  const bool metrics = metrics_armed();
  if (!req.options.timing && !metrics) return stage(name, std::forward<F>(f));
  const auto t0 = std::chrono::steady_clock::now();
  auto result = stage(name, std::forward<F>(f));
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (metrics) {
    MetricsRegistry::global()
        .histogram(std::string("flow.stage.") + name + ".ms")
        .record(ms);
  }
  if (req.options.timing) {
    out.timings.push_back({name, ms});
    out.diagnostics.push_back(timing_note(name, ms));
  }
  return result;
}

void note(FlowResult& r, const char* stage_name, std::string message) {
  r.diagnostics.push_back({DiagSeverity::Note, stage_name, std::move(message)});
}

Target resolve_target_stage(FlowResult& out, const FlowRequest& req) {
  try {
    Target t = resolve_target(req.target);
    out.target = t.name;
    note(out, "flow",
         strformat("target '%s': %s adders, delta %.3g ns, overhead %.3g ns",
                   t.name.c_str(), to_string(t.delay.style), t.delay.delta_ns,
                   t.delay.sequential_overhead_ns));
    return t;
  } catch (const Error& e) {
    throw FlowStageError("registry", e.what(), e.context());
  }
}

/// Everything the partition stage resolves in one timed step: the kernel
/// split, the per-kernel §3.2 criticals, the budget split and its price.
/// Empty criticals/split for single() partitions (they take the optimized
/// flow's exact tail instead).
struct PartitionOutcome {
  std::shared_ptr<const KernelPartition> partition;
  /// Uncached runs keep the preps so transform_prepared skips re-prepping;
  /// cached runs leave these empty (the cache memoizes the prep).
  std::vector<std::shared_ptr<const TransformPrep>> preps;
  std::vector<unsigned> criticals;
  BudgetSplit split;
  PartitionBound bound;
};

} // namespace

namespace flows {

FlowResult partitioned(const FlowRequest& req) {
  FlowResult out;
  out.flow = "partitioned";
  const Target target = resolve_target_stage(out, req);
  StageCache* const cache = req.cache.get();
  KernelStats stats;
  const bool already_kernel = is_kernel_form(req.spec);
  Dfg kernel = timed_stage(out, req, "kernel", [&]() -> Dfg {
    if (cache) {
      const std::shared_ptr<const KernelArtifact> art = cache->kernel(req.spec);
      stats = art->stats;
      return art->kernel;
    }
    return already_kernel ? req.spec : extract_kernel(req.spec, &stats);
  });
  if (req.options.narrow) {
    kernel = timed_stage(out, req, "narrow", [&]() -> Dfg {
      return cache ? *cache->narrowed(req.spec) : narrow_widths(kernel);
    });
  }
  if (already_kernel) {
    note(out, "kernel", "specification already in kernel form");
  } else {
    note(out, "kernel",
         strformat("%zu operations -> %zu unsigned additions",
                   stats.ops_before, stats.adds_after));
  }

  const PartitionOutcome po =
      timed_stage(out, req, "partition", [&]() -> PartitionOutcome {
        PartitionOutcome o;
        if (cache) o.partition = cache->partition(req.spec, req.options.narrow);
        if (!o.partition) {
          o.partition =
              std::make_shared<const KernelPartition>(partition_kernel(kernel));
        }
        const KernelPartition& p = *o.partition;
        if (p.single()) return o;
        const std::size_t n = p.kernels.size();
        o.criticals.resize(n);
        o.preps.resize(n);
        for (std::size_t k = 0; k < n; ++k) {
          if (cache) {
            o.criticals[k] = cache->critical_time(p.kernels[k].spec, false);
          } else {
            o.preps[k] = std::make_shared<const TransformPrep>(
                prepare_transform(p.kernels[k].spec));
            o.criticals[k] = o.preps[k]->critical;
          }
        }
        o.split = split_latency_budget(p, o.criticals, req.latency);
        // ONE aggregated diagnostic for every infeasible kernel share —
        // stage() tags it with this stage's name.
        if (const std::optional<std::string> bad = validate_budget_split(
                p, o.criticals, o.split, req.latency)) {
          throw Error(*bad);
        }
        o.bound = price_partition(o.criticals, o.split, req.n_bits_override,
                                  target.delay);
        return o;
      });
  const KernelPartition& p = *po.partition;
  note(out, "partition",
       strformat("%zu operative kernel%s, %zu cut edge%s", p.kernels.size(),
                 p.kernels.size() == 1 ? "" : "s", p.cut_edges.size(),
                 p.cut_edges.size() == 1 ? "" : "s"));
  out.scheduler = req.scheduler;

  if (p.single()) {
    // The optimized flow's exact tail, keyed on the request spec: a shared
    // StageCache serves both flows from the same entries, and the
    // schedule/report stay bit-identical to flows::optimized.
    out.transform =
        timed_stage(out, req, "transform", [&]() -> TransformResult {
          if (cache) {
            return *cache->transform(req.spec, req.options.narrow, req.latency,
                                     req.n_bits_override, target.delay,
                                     req.cancel);
          }
          return transform_spec(kernel, req.latency, req.n_bits_override,
                                target.delay);
        });
    note(out, "transform",
         strformat("cycle budget %u chained bits%s", out.transform->n_bits,
                   req.n_bits_override == 0 ? " (estimated)" : " (override)"));
    OracleCounters counters;
    out.schedule = timed_stage(out, req, "schedule", [&]() -> FragSchedule {
      if (cache) {
        return *cache->fragment_schedule(req.scheduler, req.spec,
                                         req.options.narrow, req.latency,
                                         req.n_bits_override, target.delay,
                                         req.cancel);
      }
      SchedulerOptions opts;
      opts.cancel = req.cancel;
      if (req.options.timing || metrics_armed()) {
        opts.counters = &counters;
        FragSchedule fs = run_scheduler(req.scheduler, *out.transform, opts);
        if (req.options.timing) out.counters = counters;
        if (metrics_armed()) {
          publish_oracle_counters(MetricsRegistry::global(), counters);
        }
        return fs;
      }
      return run_scheduler(req.scheduler, *out.transform, opts);
    });
    note(out, "schedule",
         strformat("scheduler '%s' placed %zu fragments in %zu adder ops",
                   req.scheduler.c_str(), out.transform->adds.size(),
                   out.schedule->fu_ops.size()));
    Datapath dp = timed_stage(out, req, "allocate", [&]() -> Datapath {
      if (cache) {
        return *cache->bitlevel_datapath(req.scheduler, req.spec,
                                         req.options.narrow, req.latency,
                                         req.n_bits_override, target.delay,
                                         req.cancel);
      }
      return allocate_bitlevel(*out.transform, *out.schedule);
    });
    if (req.options.timing) {
      timed_stage(out, req, "verify", [&] {
        validate_schedule(out.transform->spec, out.schedule->schedule);
        return 0;
      });
    }
    ImplementationReport r;
    r.flow = "partitioned";
    r.target = target.name;
    r.latency = req.latency;
    r.cycle_deltas = target.delay.adder_depth(out.transform->n_bits);
    r.cycle_ns = target.delay.cycle_ns(r.cycle_deltas);
    r.execution_ns = target.delay.execution_ns(r.latency, r.cycle_deltas);
    r.area = area_of(dp, target.gates);
    r.datapath = std::move(dp);
    r.op_count = out.transform->spec.operations().size();
    out.report = std::move(r);
    PartitionSummary ps;
    ps.cut_edges = 0;
    ps.composed_latency = req.latency;
    ps.kernels.push_back({p.kernels[0].spec.name(), p.kernels[0].nodes.size(),
                          p.kernels[0].add_count, out.transform->critical_time,
                          req.latency, out.transform->n_bits, 0});
    out.partition = std::move(ps);
    out.kernel_stats = stats;
    out.kernel = std::move(kernel);
    out.ok = true;
    return out;
  }

  // Multi-kernel composition: every per-kernel stage keyed on the
  // sub-kernel's own digest (narrow = false — the sub-specs were cut from
  // the already-narrowed kernel).
  const std::size_t K = p.kernels.size();
  CompositeSchedule cs;
  cs.partition = po.partition;
  cs.criticals = po.criticals;
  cs.split = po.split;
  cs.bound = po.bound;
  cs.runs.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    cs.runs[k].latency = cs.split.latency[k];
    cs.runs[k].n_bits = cs.bound.n_bits[k];
    cs.runs[k].start_cycle = cs.split.start_cycle[k];
  }
  timed_stage(out, req, "transform", [&] {
    for (std::size_t k = 0; k < K; ++k) {
      KernelRun& run = cs.runs[k];
      if (cache) {
        run.transform =
            cache->transform(p.kernels[k].spec, false, run.latency,
                             req.n_bits_override, target.delay, req.cancel);
      } else {
        run.transform = std::make_shared<const TransformResult>(
            transform_prepared(*po.preps[k], run.latency, run.n_bits));
      }
    }
    return 0;
  });
  {
    std::string budgets;
    for (std::size_t k = 0; k < K; ++k) {
      if (!budgets.empty()) budgets += ", ";
      budgets += strformat("%s %u+%u@%u", p.kernels[k].spec.name().c_str(),
                           cs.runs[k].start_cycle, cs.runs[k].latency,
                           cs.runs[k].n_bits);
    }
    note(out, "transform",
         strformat("per-kernel start+latency@n_bits: %s", budgets.c_str()));
  }
  OracleCounters counters;
  for (std::size_t k = 0; k < K; ++k) {
    const std::string stage_name = "schedule.k" + std::to_string(k);
    KernelRun& run = cs.runs[k];
    run.schedule = timed_stage(
        out, req, stage_name.c_str(),
        [&]() -> std::shared_ptr<const FragSchedule> {
          if (cache) {
            return cache->fragment_schedule(req.scheduler, p.kernels[k].spec,
                                            false, run.latency,
                                            req.n_bits_override, target.delay,
                                            req.cancel);
          }
          SchedulerOptions opts;
          opts.cancel = req.cancel;
          OracleCounters local;
          if (req.options.timing || metrics_armed()) opts.counters = &local;
          auto fs = std::make_shared<const FragSchedule>(
              run_scheduler(req.scheduler, *run.transform, opts));
          counters.candidates_evaluated += local.candidates_evaluated;
          counters.candidates_probed += local.candidates_probed;
          counters.candidates_rejected += local.candidates_rejected;
          counters.candidates_committed += local.candidates_committed;
          counters.words_repropagated += local.words_repropagated;
          return fs;
        });
  }
  if (req.options.timing && !cache) out.counters = counters;
  if (metrics_armed() && !cache) {
    publish_oracle_counters(MetricsRegistry::global(), counters);
  }
  {
    std::size_t fragments = 0, fu_ops = 0;
    for (const KernelRun& run : cs.runs) {
      fragments += run.transform->adds.size();
      fu_ops += run.schedule->fu_ops.size();
    }
    note(out, "schedule",
         strformat("scheduler '%s' placed %zu fragments in %zu adder ops "
                   "across %zu kernels",
                   req.scheduler.c_str(), fragments, fu_ops, K));
  }
  timed_stage(out, req, "allocate", [&] {
    for (std::size_t k = 0; k < K; ++k) {
      KernelRun& run = cs.runs[k];
      if (cache) {
        run.datapath = cache->bitlevel_datapath(
            req.scheduler, p.kernels[k].spec, false, run.latency,
            req.n_bits_override, target.delay, req.cancel);
      } else {
        run.datapath = std::make_shared<const Datapath>(
            allocate_bitlevel(*run.transform, *run.schedule));
      }
    }
    return 0;
  });
  if (req.options.timing) {
    timed_stage(out, req, "verify", [&] {
      for (const KernelRun& run : cs.runs) {
        validate_schedule(run.transform->spec, run.schedule->schedule);
      }
      return 0;
    });
  }

  // Composed report: latency is the critical inter-kernel path, the clock
  // the widest kernel window's delta depth, area the SUM of per-kernel
  // areas (each kernel keeps its own controller — GateModel::controller is
  // nonlinear, so pricing the merged datapath as one machine would be
  // wrong), and the datapath the offset-merged composition for rendering.
  ImplementationReport r;
  r.flow = "partitioned";
  r.target = target.name;
  r.latency = cs.bound.composed_latency;
  r.cycle_deltas = cs.bound.max_deltas;
  r.cycle_ns = target.delay.cycle_ns(r.cycle_deltas);
  r.execution_ns = target.delay.execution_ns(r.latency, r.cycle_deltas);
  r.area = composed_area(cs, target.gates);
  r.datapath = merged_datapath(cs);
  std::size_t op_count = 0;
  for (const KernelRun& run : cs.runs) {
    op_count += run.transform->spec.operations().size();
  }
  r.op_count = op_count;
  out.report = std::move(r);
  PartitionSummary ps;
  ps.cut_edges = p.cut_edges.size();
  ps.composed_latency = cs.bound.composed_latency;
  for (std::size_t k = 0; k < K; ++k) {
    ps.kernels.push_back({p.kernels[k].spec.name(), p.kernels[k].nodes.size(),
                          p.kernels[k].add_count, cs.criticals[k],
                          cs.runs[k].latency, cs.runs[k].n_bits,
                          cs.runs[k].start_cycle});
  }
  out.partition = std::move(ps);
  out.kernel_stats = stats;
  out.kernel = std::move(kernel);
  out.ok = true;
  return out;
}

} // namespace flows

} // namespace hls
