#pragma once
// CompositeSchedule — running every kernel of a KernelPartition through the
// existing transform / SchedulerCore / bit-level allocation machinery and
// composing the results under one shared latency constraint.
//
// Each kernel gets its own slice of the latency budget
// (split_latency_budget), its own §3.2 cycle budget (price_partition — the
// same pricing the Explorer's bound pruning uses), and its own
// TransformResult / FragSchedule / Datapath, exactly as if it were a
// standalone specification. Composition is then pure bookkeeping:
//
//   * the composed latency is the critical inter-kernel path in cycles
//     (kernel k starts after its longest predecessor chain finishes);
//   * the clock is the widest per-kernel chained window's delta depth —
//     every kernel runs on the one shared clock;
//   * area is the SUM of the per-kernel datapath areas (each kernel keeps
//     its own controller — GateModel::controller is nonlinear in states,
//     so summing per-kernel area_of is the honest composition, not
//     area_of over the merged instance lists);
//   * merged_datapath() concatenates the instance lists with cycle/register
//     offsets applied, for reporting.
//
// simulate_composite() closes the verification loop at the composition
// level: kernels execute in topological order, boundary values flow from
// exporter outputs to importer inputs, and the result must equal
// evaluate(parent spec) — the partition-level analogue of the
// evaluator == cycle-sim property the single-kernel tests pin.

#include <memory>
#include <string>
#include <vector>

#include "alloc/datapath.hpp"
#include "frag/transform.hpp"
#include "ir/eval.hpp"
#include "partition/partition.hpp"
#include "rtl/area.hpp"
#include "sched/fragsched.hpp"

namespace hls {

/// One kernel's trip through the per-kernel pipeline. Artefacts are shared
/// pointers so cached runs (ArtifactCache) and uncached runs compose the
/// same way.
struct KernelRun {
  std::shared_ptr<const TransformResult> transform;
  std::shared_ptr<const FragSchedule> schedule;
  std::shared_ptr<const Datapath> datapath;
  unsigned latency = 0;      ///< this kernel's slice of the budget
  unsigned n_bits = 0;       ///< this kernel's §3.2 cycle budget
  unsigned start_cycle = 0;  ///< composed schedule offset
};

/// The composed result: partition + budget split + per-kernel runs.
struct CompositeSchedule {
  std::shared_ptr<const KernelPartition> partition;
  std::vector<unsigned> criticals;  ///< per-kernel §3.2 critical times
  BudgetSplit split;
  PartitionBound bound;
  std::vector<KernelRun> runs;
};

/// Runs the whole composition uncached: partition, split the budget (throws
/// hls::Error with the aggregated all-infeasible-kernels message when the
/// constraint cannot fit), then transform + schedule + allocate every
/// kernel with the named strategy. Single-kernel specs take the identical
/// calls transform_spec / run_scheduler / allocate_bitlevel make, so the
/// run is bit-identical to the monolithic optimized pipeline.
CompositeSchedule compose_schedule(const Dfg& kernel_form, unsigned latency,
                                   const std::string& scheduler = "list",
                                   const DelayModel& delay = {},
                                   unsigned n_bits_override = 0);

/// Concatenates the per-kernel datapaths into one reporting instance list:
/// FU binding cycles, register boundary spans and stored-run cycles are
/// offset by each kernel's start cycle, register indices are rebased, and
/// the controller states become the composed latency. Area must NOT be
/// priced over this merged structure — use composed_area.
Datapath merged_datapath(const CompositeSchedule& cs);

/// Sum of per-kernel area_of(datapath, gm) — each kernel keeps its own
/// controller, so the composed area is the sum of the per-kernel
/// breakdowns (controller cost is nonlinear in FSM states).
AreaBreakdown composed_area(const CompositeSchedule& cs, const GateModel& gm);

/// Executes the composition: kernels in topological order, each through the
/// cycle-accurate datapath simulator, boundary values wired from exporter
/// to importers. Returns the parent specification's output values. Throws
/// hls::Error when an input value is missing.
OutputValues simulate_composite(const CompositeSchedule& cs,
                                const InputValues& inputs);

} // namespace hls
