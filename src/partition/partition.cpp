#include "partition/partition.hpp"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <set>
#include <tuple>
#include <utility>

#include "kernel/extract.hpp"
#include "support/strings.hpp"
#include "timing/critical_path.hpp"

namespace hls {

namespace {

constexpr unsigned kNone = static_cast<unsigned>(-1);

/// Path-halving union-find over node indices; the representative is always
/// the smallest index of the set, so component ids are deterministic.
struct UnionFind {
  std::vector<std::uint32_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<std::uint32_t>(i);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent[b] = a;
  }
};

/// Iterative Tarjan over the (small) kernel-candidate graph. Returns the
/// SCC id of every vertex; ids are then canonicalized to the smallest
/// member, so merging is deterministic.
std::vector<unsigned> scc_of(const std::vector<std::vector<unsigned>>& succ) {
  const std::size_t n = succ.size();
  std::vector<unsigned> index(n, kNone), low(n, 0), comp(n, kNone);
  std::vector<bool> on_stack(n, false);
  std::vector<unsigned> stack;
  unsigned next_index = 0;
  struct Frame {
    unsigned v;
    std::size_t child;
  };
  for (unsigned root = 0; root < n; ++root) {
    if (index[root] != kNone) continue;
    std::vector<Frame> frames{{root, 0}};
    index[root] = low[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.child < succ[f.v].size()) {
        const unsigned w = succ[f.v][f.child++];
        if (index[w] == kNone) {
          index[w] = low[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[f.v] = std::min(low[f.v], index[w]);
        }
      } else {
        if (low[f.v] == index[f.v]) {
          // Pop one SCC; canonical id = smallest member vertex.
          std::vector<unsigned> members;
          for (;;) {
            const unsigned w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            members.push_back(w);
            if (w == f.v) break;
          }
          const unsigned id = *std::min_element(members.begin(), members.end());
          for (const unsigned w : members) comp[w] = id;
        }
        const unsigned v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().v] = std::min(low[frames.back().v], low[v]);
        }
      }
    }
  }
  return comp;
}

KernelPartition single_partition(const Dfg& g) {
  KernelPartition p;
  PartitionKernel k;
  k.spec = g;  // verbatim: same digest, so cache entries are shared
  for (std::uint32_t i = 0; i < g.size(); ++i) {
    const OpKind kind = g.nodes()[i].kind;
    if (kind == OpKind::Input || kind == OpKind::Const) continue;
    k.nodes.push_back(NodeId{i});
    if (kind == OpKind::Add) ++k.add_count;
  }
  p.kernels.push_back(std::move(k));
  return p;
}

} // namespace

std::vector<std::pair<unsigned, unsigned>> KernelPartition::edges() const {
  std::vector<std::pair<unsigned, unsigned>> out;
  out.reserve(cut_edges.size());
  for (const CutEdge& e : cut_edges) out.emplace_back(e.from, e.to);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

KernelPartition partition_kernel(const Dfg& g) {
  HLS_REQUIRE(is_kernel_form(g),
              "partition_kernel requires a kernel-form specification");
  const std::size_t n = g.size();
  if (g.additive_op_count() == 0) return single_partition(g);

  // 1. Components of Adds under direct Add -> Add operand edges (sum feeds
  //    and carry chains are never cut).
  UnionFind uf(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Node& node = g.nodes()[i];
    if (node.kind != OpKind::Add) continue;
    for (const Operand& op : node.operands) {
      if (g.node(op.node).kind == OpKind::Add) uf.unite(i, op.node.index);
    }
  }

  // 2. Assign every non-Input/Const node a component: Adds by union-find,
  //    glue/concat/output by first assigned producer (forward sweep), else
  //    first assigned consumer (backward sweep), iterated to a fixpoint.
  //    Glue reachable from neither (input-to-output passthrough logic)
  //    falls back to the first component.
  std::vector<std::vector<std::uint32_t>> users(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const Operand& op : g.nodes()[i].operands) {
      users[op.node.index].push_back(i);
    }
  }
  std::vector<unsigned> comp(n, kNone);
  unsigned first_add_comp = kNone;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (g.nodes()[i].kind == OpKind::Add) {
      comp[i] = uf.find(i);
      if (first_add_comp == kNone) first_add_comp = comp[i];
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      const Node& node = g.nodes()[i];
      if (comp[i] != kNone || node.kind == OpKind::Input ||
          node.kind == OpKind::Const || node.kind == OpKind::Add) {
        continue;
      }
      for (const Operand& op : node.operands) {
        if (comp[op.node.index] != kNone) {
          comp[i] = comp[op.node.index];
          changed = true;
          break;
        }
      }
    }
    for (std::uint32_t i = static_cast<std::uint32_t>(n); i-- > 0;) {
      const Node& node = g.nodes()[i];
      if (comp[i] != kNone || node.kind == OpKind::Input ||
          node.kind == OpKind::Const || node.kind == OpKind::Add) {
        continue;
      }
      for (const std::uint32_t u : users[i]) {
        if (comp[u] != kNone) {
          comp[i] = comp[u];
          changed = true;
          break;
        }
      }
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const OpKind kind = g.nodes()[i].kind;
    if (comp[i] == kNone && kind != OpKind::Input && kind != OpKind::Const) {
      comp[i] = first_add_comp;
    }
  }

  // 3. Collapse kernel-level cycles: glue paths may interleave two Add
  //    components in both directions; kernels in one strongly connected
  //    component merge so the kernel graph is a DAG by construction.
  std::vector<unsigned> dense(n, kNone);  // comp id -> dense vertex
  std::vector<unsigned> dense_to_comp;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (comp[i] == kNone || dense[comp[i]] != kNone) continue;
    dense[comp[i]] = static_cast<unsigned>(dense_to_comp.size());
    dense_to_comp.push_back(comp[i]);
  }
  const std::size_t nv = dense_to_comp.size();
  std::vector<std::vector<unsigned>> succ(nv);
  {
    std::set<std::pair<unsigned, unsigned>> seen;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (comp[i] == kNone) continue;
      for (const Operand& op : g.nodes()[i].operands) {
        const unsigned pc = comp[op.node.index];
        if (pc == kNone || pc == comp[i]) continue;
        const unsigned a = dense[pc], b = dense[comp[i]];
        if (seen.insert({a, b}).second) succ[a].push_back(b);
      }
    }
  }
  const std::vector<unsigned> scc = scc_of(succ);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (comp[i] != kNone) comp[i] = scc[dense[comp[i]]];  // now a dense-space id
  }

  // 4. Topological renumbering over the merged kernels, ties broken by the
  //    smallest member node, so kernel i only feeds kernel j > i and the
  //    numbering is deterministic.
  std::vector<unsigned> merged_ids;  // distinct dense-space ids, by first node
  std::vector<unsigned> slot(nv, kNone);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (comp[i] == kNone || slot[comp[i]] != kNone) continue;
    slot[comp[i]] = static_cast<unsigned>(merged_ids.size());
    merged_ids.push_back(comp[i]);
  }
  const std::size_t nm = merged_ids.size();
  if (nm == 1) return single_partition(g);
  std::vector<unsigned> tiebreak(nm, kNone);  // smallest member node index
  for (std::uint32_t i = 0; i < n; ++i) {
    if (comp[i] == kNone) continue;
    unsigned& t = tiebreak[slot[comp[i]]];
    if (t == kNone) t = i;
  }
  std::vector<std::vector<unsigned>> msucc(nm);
  std::vector<unsigned> indeg(nm, 0);
  {
    std::set<std::pair<unsigned, unsigned>> seen;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (comp[i] == kNone) continue;
      for (const Operand& op : g.nodes()[i].operands) {
        const unsigned pc = comp[op.node.index];
        if (pc == kNone || pc == comp[i]) continue;
        const unsigned a = slot[pc], b = slot[comp[i]];
        if (seen.insert({a, b}).second) {
          msucc[a].push_back(b);
          ++indeg[b];
        }
      }
    }
  }
  std::vector<unsigned> order(nm, kNone);  // merged slot -> final kernel index
  {
    using Item = std::pair<unsigned, unsigned>;  // (tiebreak, slot)
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> ready;
    for (unsigned m = 0; m < nm; ++m) {
      if (indeg[m] == 0) ready.push({tiebreak[m], m});
    }
    unsigned next = 0;
    while (!ready.empty()) {
      const unsigned m = ready.top().second;
      ready.pop();
      order[m] = next++;
      for (const unsigned s : msucc[m]) {
        if (--indeg[s] == 0) ready.push({tiebreak[s], s});
      }
    }
    HLS_ASSERT(next == nm, "kernel graph is not a DAG after SCC collapse");
  }
  std::vector<unsigned> kernel_of(n, kNone);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (comp[i] != kNone) kernel_of[i] = order[slot[comp[i]]];
  }

  // 5. Materialize one self-contained kernel-form Dfg per kernel: primary
  //    inputs/constants replicated, cross-kernel values imported/exported
  //    through "__x<node>" boundary ports (full producer width; consumer
  //    slices stay on the operands).
  KernelPartition p;
  p.kernels.resize(nm);
  std::vector<std::vector<std::uint32_t>> members(nm);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (kernel_of[i] != kNone) members[kernel_of[i]].push_back(i);
  }
  std::vector<std::vector<std::uint32_t>> exports_of(nm);
  {
    std::vector<bool> exported(n, false);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (kernel_of[i] == kNone) continue;
      for (const Operand& op : g.nodes()[i].operands) {
        const std::uint32_t q = op.node.index;
        if (kernel_of[q] != kNone && kernel_of[q] != kernel_of[i] &&
            !exported[q]) {
          exported[q] = true;
          exports_of[kernel_of[q]].push_back(q);
        }
      }
    }
    for (auto& v : exports_of) std::sort(v.begin(), v.end());
  }
  const auto boundary_name = [](std::uint32_t node) {
    return "__x" + std::to_string(node);
  };
  for (unsigned k = 0; k < nm; ++k) {
    PartitionKernel& pk = p.kernels[k];
    Dfg sub(g.name() + ".k" + std::to_string(k));
    std::vector<NodeId> map(n, kInvalidNode);
    // External producers first (no operands, so order is free; ascending
    // parent index keeps construction canonical).
    std::vector<std::uint32_t> externals;
    for (const std::uint32_t m : members[k]) {
      for (const Operand& op : g.nodes()[m].operands) {
        const std::uint32_t q = op.node.index;
        if (kernel_of[q] != k) externals.push_back(q);
      }
    }
    std::sort(externals.begin(), externals.end());
    externals.erase(std::unique(externals.begin(), externals.end()),
                    externals.end());
    for (const std::uint32_t q : externals) {
      const Node& qn = g.nodes()[q];
      if (qn.kind == OpKind::Input) {
        map[q] = sub.add_input(qn.name, qn.width, qn.is_signed);
      } else if (qn.kind == OpKind::Const) {
        map[q] = sub.add_const(qn.value, qn.width);
      } else {
        map[q] = sub.add_input(boundary_name(q), qn.width);
        pk.imports.push_back({boundary_name(q), NodeId{q}});
        p.cut_edges.push_back({NodeId{q}, kernel_of[q], k});
      }
    }
    for (const std::uint32_t m : members[k]) {
      const Node& mn = g.nodes()[m];
      Node clone;
      clone.kind = mn.kind;
      clone.width = mn.width;
      clone.is_signed = mn.is_signed;
      clone.name = mn.name;
      clone.value = mn.value;
      clone.operands.reserve(mn.operands.size());
      for (const Operand& op : mn.operands) {
        clone.operands.push_back({map[op.node.index], op.bits});
      }
      map[m] = sub.add_node(std::move(clone));
      pk.nodes.push_back(NodeId{m});
      if (mn.kind == OpKind::Add) ++pk.add_count;
    }
    for (const std::uint32_t e : exports_of[k]) {
      pk.exports.push_back({boundary_name(e), NodeId{e}});
      sub.add_output(boundary_name(e), sub.whole(map[e]));
    }
    pk.spec = std::move(sub);
  }
  std::sort(p.cut_edges.begin(), p.cut_edges.end(),
            [](const KernelPartition::CutEdge& a,
               const KernelPartition::CutEdge& b) {
              return std::tie(a.from, a.to, a.producer.index) <
                     std::tie(b.from, b.to, b.producer.index);
            });
  return p;
}

void verify_partition(const KernelPartition& p, const Dfg& parent) {
  HLS_REQUIRE(!p.kernels.empty(), "partition has no kernels");
  const std::size_t n = parent.size();
  std::vector<unsigned> owner(n, kNone);
  for (unsigned k = 0; k < p.kernels.size(); ++k) {
    for (const NodeId id : p.kernels[k].nodes) {
      HLS_REQUIRE(id.index < n, "partition references a node out of range");
      const OpKind kind = parent.node(id).kind;
      HLS_REQUIRE(kind != OpKind::Input && kind != OpKind::Const,
                  "inputs and constants are replicated, never assigned");
      HLS_REQUIRE(owner[id.index] == kNone,
                  strformat("node %u assigned to two kernels", id.index));
      owner[id.index] = k;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const OpKind kind = parent.nodes()[i].kind;
    if (kind == OpKind::Input || kind == OpKind::Const) continue;
    HLS_REQUIRE(owner[i] != kNone,
                strformat("node %u is assigned to no kernel", i));
  }
  // Legality: no direct Add -> Add operand edge crosses kernels.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Node& node = parent.nodes()[i];
    if (node.kind != OpKind::Add) continue;
    for (const Operand& op : node.operands) {
      if (parent.node(op.node).kind != OpKind::Add) continue;
      HLS_REQUIRE(owner[i] == owner[op.node.index],
                  strformat("Add -> Add edge %u -> %u crosses kernels",
                            op.node.index, i));
    }
  }
  // Cut edges must run low -> high (topological numbering = acyclic kernel
  // graph) and agree with ownership.
  for (const KernelPartition::CutEdge& e : p.cut_edges) {
    HLS_REQUIRE(e.from < e.to, "cut edge violates topological kernel order");
    HLS_REQUIRE(e.to < p.kernels.size(), "cut edge kernel out of range");
    HLS_REQUIRE(owner[e.producer.index] == e.from,
                "cut edge producer owned by a different kernel");
  }
  // Boundary ports: every import resolves to an export of the owner kernel
  // under the same name, and both ports exist in the sub-specs.
  for (unsigned k = 0; k < p.kernels.size(); ++k) {
    const PartitionKernel& pk = p.kernels[k];
    for (const PartitionKernel::Port& port : pk.imports) {
      const unsigned from = owner[port.parent.index];
      HLS_REQUIRE(from != kNone && from != k, "import from own kernel");
      const auto& ex = p.kernels[from].exports;
      const bool found =
          std::any_of(ex.begin(), ex.end(), [&](const PartitionKernel::Port& e) {
            return e.parent == port.parent && e.name == port.name;
          });
      HLS_REQUIRE(found, "import has no matching export: " + port.name);
      HLS_REQUIRE(pk.spec.find_port(port.name).has_value(),
                  "import port missing from sub-spec: " + port.name);
    }
    for (const PartitionKernel::Port& port : pk.exports) {
      HLS_REQUIRE(owner[port.parent.index] == k, "export of foreign node");
      HLS_REQUIRE(pk.spec.find_port(port.name).has_value(),
                  "export port missing from sub-spec: " + port.name);
    }
    pk.spec.verify();
    HLS_REQUIRE(is_kernel_form(pk.spec), "partition kernel is not kernel-form");
  }
  if (p.single()) {
    HLS_REQUIRE(p.kernels[0].spec.size() == parent.size(),
                "single-kernel partition must hold the parent graph verbatim");
  }
}

BudgetSplit split_latency_budget(const KernelPartition& p,
                                 const std::vector<unsigned>& criticals,
                                 unsigned total_latency) {
  const std::size_t K = p.kernels.size();
  HLS_REQUIRE(criticals.size() == K,
              "one critical time per kernel is required");
  HLS_REQUIRE(total_latency >= 1, "latency must be >= 1");
  BudgetSplit s;
  if (K == 1) {
    s.latency = {total_latency};
    s.raw = {total_latency};
    s.start_cycle = {0};
    s.composed_latency = total_latency;
    return s;
  }
  std::vector<std::vector<unsigned>> succ(K), pred(K);
  for (const auto& [a, b] : p.edges()) {
    succ[a].push_back(b);
    pred[b].push_back(a);
  }
  // Heaviest critical-time path through each kernel (kernel order is
  // topological): up = longest ending at k, down = longest starting at k.
  std::vector<std::uint64_t> up(K), down(K);
  for (std::size_t k = 0; k < K; ++k) {
    std::uint64_t best = 0;
    for (const unsigned q : pred[k]) best = std::max(best, up[q]);
    up[k] = best + criticals[k];
  }
  for (std::size_t k = K; k-- > 0;) {
    std::uint64_t best = 0;
    for (const unsigned q : succ[k]) best = std::max(best, down[q]);
    down[k] = best + criticals[k];
  }
  // Proportional share: floor(total * c_k / T_k) with T_k the heaviest path
  // through k. Along any kernel path P, sum_k total*c_k/T_k <= total since
  // T_k >= weight(P) for every k on P — the floors always fit; only the
  // >= 1 bumps (raw == 0) can overrun, which validate_budget_split reports.
  s.raw.resize(K);
  s.latency.resize(K);
  for (std::size_t k = 0; k < K; ++k) {
    const std::uint64_t through = up[k] + down[k] - criticals[k];
    s.raw[k] = static_cast<unsigned>(
        static_cast<std::uint64_t>(total_latency) * criticals[k] / through);
    s.latency[k] = std::max(1u, s.raw[k]);
  }
  // Deterministic slack redistribution: +1 to the most starved kernel
  // (largest critical per cycle, ties to the lowest index) whose critical
  // path still fits, until the composed latency meets the constraint.
  std::vector<unsigned> start(K), tail(K);
  for (;;) {
    for (std::size_t k = 0; k < K; ++k) {
      unsigned best = 0;
      for (const unsigned q : pred[k]) {
        best = std::max(best, start[q] + s.latency[q]);
      }
      start[k] = best;
    }
    for (std::size_t k = K; k-- > 0;) {
      unsigned best = 0;
      for (const unsigned q : succ[k]) best = std::max(best, tail[q]);
      tail[k] = s.latency[k] + best;
    }
    unsigned composed = 0;
    for (std::size_t k = 0; k < K; ++k) {
      composed = std::max(composed, start[k] + s.latency[k]);
    }
    s.composed_latency = composed;
    s.start_cycle = start;
    if (composed >= total_latency) break;
    std::size_t best = K;
    for (std::size_t k = 0; k < K; ++k) {
      if (start[k] + tail[k] + 1 > total_latency) continue;
      if (best == K ||
          static_cast<std::uint64_t>(criticals[k]) * s.latency[best] >
              static_cast<std::uint64_t>(criticals[best]) * s.latency[k]) {
        best = k;
      }
    }
    if (best == K) break;
    ++s.latency[best];
  }
  return s;
}

PartitionBound price_partition(const std::vector<unsigned>& criticals,
                               const BudgetSplit& split,
                               unsigned n_bits_override,
                               const DelayModel& delay) {
  HLS_REQUIRE(criticals.size() == split.latency.size(),
              "criticals and split must describe the same kernels");
  PartitionBound b;
  b.composed_latency = split.composed_latency;
  b.n_bits.resize(criticals.size());
  for (std::size_t k = 0; k < criticals.size(); ++k) {
    const unsigned nb =
        n_bits_override != 0
            ? n_bits_override
            : estimate_cycle_budget(criticals[k], split.latency[k], delay);
    b.n_bits[k] = nb;
    b.max_deltas = std::max(b.max_deltas, delay.adder_depth(nb));
  }
  return b;
}

} // namespace hls
