#include "alloc/bitlevel.hpp"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <set>

namespace hls {

namespace {

using SourceKey = std::tuple<std::uint32_t, unsigned, unsigned>;

SourceKey key_of(const Operand& o) {
  return {o.node.index, o.bits.lo, o.bits.width};
}

unsigned log2_ceil(unsigned v) {
  return v <= 1 ? 0 : static_cast<unsigned>(std::bit_width(v - 1));
}

/// Real adder bits of a fragment node: result bits within the operand
/// slices; the exposed carry-out and zero-extension bits are wiring.
unsigned real_adder_width(const Node& n) {
  unsigned w = 0;
  for (unsigned b = 0; b < n.width; ++b) {
    if (!n.add_bit_is_free(b)) ++w;
  }
  return w;
}

/// Applies `fn(source_node, source_bit)` for every Add bit an operand slice
/// depends on, walking through glue and concat wiring bit-exactly.
void for_each_source_bit(
    const Dfg& dfg, const Operand& o,
    const std::function<void(NodeId, unsigned)>& fn) {
  const Node& p = dfg.node(o.node);
  switch (p.kind) {
    case OpKind::Add:
      for (unsigned j = 0; j < o.bits.width; ++j) fn(o.node, o.bits.lo + j);
      return;
    case OpKind::Input:
    case OpKind::Const:
      return;
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Not:
      for (const Operand& q : p.operands) {
        const BitRange within = o.bits.intersect(BitRange::whole(q.bits.width));
        if (within.empty()) continue;
        for_each_source_bit(
            dfg, Operand{q.node, BitRange{q.bits.lo + within.lo, within.width}},
            fn);
      }
      return;
    case OpKind::Concat: {
      unsigned base = 0;
      for (const Operand& q : p.operands) {
        const BitRange span{base, q.bits.width};
        const BitRange within = o.bits.intersect(span);
        if (!within.empty()) {
          for_each_source_bit(
              dfg,
              Operand{q.node,
                      BitRange{q.bits.lo + (within.lo - base), within.width}},
              fn);
        }
        base += q.bits.width;
      }
      return;
    }
    default:
      HLS_ASSERT(false, "non-kernel node in bit-level allocation");
  }
}

} // namespace

Datapath allocate_bitlevel(const TransformResult& t, const FragSchedule& fs) {
  const Dfg& dfg = t.spec;
  Datapath dp;
  dp.states = t.latency;

  // ---- adders: same-operation groups colored over cycle occupancy ---------
  struct Group {
    NodeId orig;
    unsigned width = 0;  ///< widest real adder slice of the group
    std::vector<const FragSchedule::FuOp*> ops;
  };
  std::map<std::uint32_t, Group> groups;
  for (const FragSchedule::FuOp& f : fs.fu_ops) {
    auto [gi, inserted] = groups.try_emplace(f.orig.index);
    Group& g = gi->second;
    if (inserted) g.orig = f.orig;
    unsigned w = 0;
    for (NodeId node : f.nodes) w += real_adder_width(dfg.node(node));
    g.width = std::max(g.width, w);
    g.ops.push_back(&f);
  }

  std::vector<Group*> ordered;
  for (auto& [_, g] : groups) {
    if (g.width > 0) ordered.push_back(&g);
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Group* a, const Group* b) { return a->width > b->width; });

  std::vector<std::vector<std::pair<unsigned, unsigned>>> busy;
  busy.reserve(ordered.size());
  for (const Group* g : ordered) {
    std::vector<std::pair<unsigned, unsigned>> cycles;
    for (const auto* f : g->ops) cycles.push_back({f->cycle, f->cycle});
    busy.push_back(std::move(cycles));
  }
  std::map<std::uint32_t, std::size_t> fu_of_orig;
  if (!ordered.empty()) {
    const std::vector<unsigned> color = color_intervals(busy);
    const unsigned n_fus = *std::max_element(color.begin(), color.end()) + 1;
    dp.fus.assign(n_fus, FuInstance{FuClass::Adder, 0, 0, {}});
    for (std::size_t i = 0; i < ordered.size(); ++i) {
      FuInstance& fu = dp.fus[color[i]];
      fu.width = std::max(fu.width, ordered[i]->width);
      for (const auto* f : ordered[i]->ops) {
        fu.bound.push_back({f->cycle, ordered[i]->orig});
      }
      fu_of_orig[ordered[i]->orig.index] = color[i];
    }
  }

  // ---- multiplexers: distinct sources per adder port ----------------------
  // Port 0/1 = data operands, port 2 = carry-in. Carries between fragments
  // merged into one fu_op are internal to the wider adder, not routed.
  std::vector<std::map<unsigned, std::set<SourceKey>>> port_sources(dp.fus.size());
  for (const FragSchedule::FuOp& f : fs.fu_ops) {
    auto it = fu_of_orig.find(f.orig.index);
    if (it == fu_of_orig.end()) continue;
    std::set<std::uint32_t> own;
    for (NodeId node : f.nodes) own.insert(node.index);
    for (NodeId node : f.nodes) {
      const Node& n = dfg.node(node);
      for (unsigned p = 0; p < n.operands.size(); ++p) {
        if (p == 2 && own.count(n.operands[p].node.index)) continue;
        port_sources[it->second][p].insert(key_of(n.operands[p]));
      }
    }
  }
  for (std::size_t k = 0; k < dp.fus.size(); ++k) {
    for (const auto& [port, sources] : port_sources[k]) {
      if (sources.size() < 2) continue;
      dp.muxes.push_back(MuxInstance{static_cast<unsigned>(sources.size()),
                                     port == 2 ? 1 : dp.fus[k].width});
    }
  }

  // ---- registers: bit-level liveness ---------------------------------------
  std::map<std::uint32_t, unsigned> cycle_of_node;
  for (const ScheduleRow& r : fs.schedule.rows) {
    cycle_of_node[r.op.index] = r.cycle;
  }
  // last_use[(node, bit)] = latest cycle a scheduled add reads the bit.
  std::map<std::pair<std::uint32_t, unsigned>, unsigned> last_use;
  for (const ScheduleRow& r : fs.schedule.rows) {
    const Node& n = dfg.node(r.op);
    const unsigned use_cycle = r.cycle;
    for (const Operand& o : n.operands) {
      for_each_source_bit(dfg, o, [&](NodeId u, unsigned bit) {
        auto [it, _] = last_use.try_emplace({u.index, bit}, 0u);
        it->second = std::max(it->second, use_cycle);
      });
    }
  }

  // Contiguous bit runs of one node with identical live spans become one
  // register; runs share physical registers across disjoint spans.
  struct Run {
    unsigned width;
    unsigned first_boundary, last_boundary;
    NodeId node;
    BitRange bits;
    unsigned produced, use;
  };
  std::vector<Run> runs;
  for (const auto& [node_idx, produced] : cycle_of_node) {
    const Node& n = dfg.node(NodeId{node_idx});
    unsigned b = 0;
    while (b < n.width) {
      const auto it = last_use.find({node_idx, b});
      if (it == last_use.end() || it->second <= produced) {
        ++b;
        continue;
      }
      const unsigned use = it->second;
      unsigned run_end = b + 1;
      while (run_end < n.width) {
        const auto jt = last_use.find({node_idx, run_end});
        if (jt == last_use.end() || jt->second != use) break;
        ++run_end;
      }
      runs.push_back(Run{run_end - b, produced, use - 1, NodeId{node_idx},
                         BitRange{b, run_end - b}, produced, use});
      b = run_end;
    }
  }
  std::stable_sort(runs.begin(), runs.end(),
                   [](const Run& a, const Run& b) { return a.width > b.width; });
  std::vector<std::vector<std::pair<unsigned, unsigned>>> reg_busy;
  reg_busy.reserve(runs.size());
  for (const Run& r : runs) {
    reg_busy.push_back({{r.first_boundary, r.last_boundary}});
  }
  if (!runs.empty()) {
    const std::vector<unsigned> color = color_intervals(reg_busy);
    for (std::size_t i = 0; i < runs.size(); ++i) {
      dp.stored.push_back(StoredRun{runs[i].node, runs[i].bits,
                                    runs[i].produced, runs[i].use, color[i]});
    }
    const unsigned n_regs = *std::max_element(color.begin(), color.end()) + 1;
    dp.regs.assign(n_regs, RegInstance{0, UINT32_MAX, 0});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      RegInstance& r = dp.regs[color[i]];
      r.width = std::max(r.width, runs[i].width);
      r.first_boundary = std::min(r.first_boundary, runs[i].first_boundary);
      r.last_boundary = std::max(r.last_boundary, runs[i].last_boundary);
    }
  }

  for (const MuxInstance& m : dp.muxes) dp.control_signals += log2_ceil(m.inputs);
  dp.control_signals += static_cast<unsigned>(dp.regs.size());
  return dp;
}

} // namespace hls
