#pragma once
// Bit-level allocation for fragmented schedules — the paper's datapath.
//
// Functional units are adders sized to fragment widths. All fragments of one
// original operation bind to the same adder (the paper's example: one 6-bit
// adder computes C5..0, C11..6 and C15..12 across the three cycles), adders
// are shared across operations with disjoint cycle occupancy, and only the
// result bits that actually cross a cycle boundary are registered — which is
// how the motivational example ends up storing just C5, E4 and three carry
// bits instead of whole 16-bit values.

#include "alloc/datapath.hpp"
#include "sched/fragsched.hpp"

namespace hls {

Datapath allocate_bitlevel(const TransformResult& t, const FragSchedule& fs);

} // namespace hls
