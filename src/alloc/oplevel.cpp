#include "alloc/oplevel.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <set>

namespace hls {

namespace {

/// Operand source key for mux counting: producer node + slice.
using SourceKey = std::tuple<std::uint32_t, unsigned, unsigned>;

SourceKey key_of(const Operand& o) {
  return {o.node.index, o.bits.lo, o.bits.width};
}

/// Resolves an operand through glue/concat wiring to the operation or input
/// nodes that actually produce its bits.
void collect_sources(const Dfg& dfg, const Operand& o,
                     std::vector<NodeId>& out) {
  const Node& p = dfg.node(o.node);
  if (is_glue(p.kind) || p.kind == OpKind::Concat) {
    for (const Operand& q : p.operands) collect_sources(dfg, q, out);
  } else {
    out.push_back(o.node);
  }
}

unsigned log2_ceil(unsigned v) {
  return v <= 1 ? 0 : static_cast<unsigned>(std::bit_width(v - 1));
}

} // namespace

Datapath allocate_oplevel(const Dfg& spec, const OpSchedule& s) {
  Datapath dp;
  dp.states = s.latency;

  std::map<std::uint32_t, OpSpan> span_of;
  for (const OpSpan& sp : s.spans) span_of[sp.op.index] = sp;

  // ---- functional units: first-fit interval coloring per class ------------
  struct OpRec {
    NodeId op;
    FuClass cls;
    unsigned w1, w2;
    OpSpan span;
  };
  std::vector<OpRec> recs;
  for (const OpSpan& sp : s.spans) {
    const Node& n = spec.node(sp.op);
    OpRec r{sp.op, fu_class_of(n.kind), n.width, 0, sp};
    if (n.kind == OpKind::Mul) {
      r.w1 = n.operands[0].bits.width;
      r.w2 = n.operands[1].bits.width;
    } else if (is_comparison(n.kind)) {
      r.w1 = std::max(n.operands[0].bits.width, n.operands[1].bits.width);
    }
    recs.push_back(r);
  }

  std::map<std::uint32_t, std::size_t> fu_of_op;  // node index -> dp.fus index
  for (const FuClass cls :
       {FuClass::Adder, FuClass::Subtractor, FuClass::Multiplier,
        FuClass::Comparator, FuClass::MinMax}) {
    std::vector<OpRec> group;
    for (const OpRec& r : recs) {
      if (r.cls == cls) group.push_back(r);
    }
    if (group.empty()) continue;
    // Widest first, so shared FUs take the maximum width of their users.
    std::stable_sort(group.begin(), group.end(), [](const OpRec& a, const OpRec& b) {
      return a.w1 * std::max(1u, a.w2) > b.w1 * std::max(1u, b.w2);
    });
    std::vector<std::vector<std::pair<unsigned, unsigned>>> busy;
    busy.reserve(group.size());
    for (const OpRec& r : group) {
      busy.push_back({{r.span.first_cycle, r.span.last_cycle}});
    }
    const std::vector<unsigned> color = color_intervals(busy);
    const std::size_t base = dp.fus.size();
    const unsigned n_fus = *std::max_element(color.begin(), color.end()) + 1;
    for (unsigned k = 0; k < n_fus; ++k) {
      dp.fus.push_back(FuInstance{cls, 0, 0, {}});
    }
    for (std::size_t i = 0; i < group.size(); ++i) {
      FuInstance& fu = dp.fus[base + color[i]];
      fu.width = std::max(fu.width, group[i].w1);
      fu.width2 = std::max(fu.width2, group[i].w2);
      fu.bound.push_back({group[i].span.first_cycle, group[i].op});
      fu_of_op[group[i].op.index] = base + color[i];
    }
  }

  // ---- multiplexers: distinct operand sources per FU input port -----------
  for (const FuInstance& fu : dp.fus) {
    std::map<unsigned, std::set<SourceKey>> port_sources;
    for (const auto& [cycle, op] : fu.bound) {
      const Node& n = spec.node(op);
      for (unsigned p = 0; p < n.operands.size(); ++p) {
        port_sources[p].insert(key_of(n.operands[p]));
      }
    }
    for (const auto& [port, sources] : port_sources) {
      if (sources.size() < 2) continue;
      const unsigned width = port == 2 ? 1 : (port == 1 && fu.width2 ? fu.width2
                                                                     : fu.width);
      dp.muxes.push_back(
          MuxInstance{static_cast<unsigned>(sources.size()), width});
    }
  }

  // ---- registers: whole values crossing cycle boundaries ------------------
  // produced[u] = last cycle of u's span; last_use[u] = latest cycle any
  // consumer needs u held (a multicycle consumer holds operands through its
  // whole span).
  std::map<std::uint32_t, unsigned> last_use;
  for (const OpSpan& sp : s.spans) {
    std::vector<NodeId> sources;
    for (const Operand& o : spec.node(sp.op).operands) {
      collect_sources(spec, o, sources);
    }
    for (NodeId u : sources) {
      const OpKind k = spec.node(u).kind;
      if (k == OpKind::Input || k == OpKind::Const) continue;  // port wiring
      auto [it, _] = last_use.try_emplace(u.index, 0u);
      it->second = std::max(it->second, sp.last_cycle);
    }
  }
  struct LiveValue {
    unsigned width;
    unsigned first_boundary, last_boundary;
  };
  std::vector<LiveValue> values;
  for (const auto& [u, use] : last_use) {
    const auto it = span_of.find(u);
    if (it == span_of.end()) continue;
    const unsigned produced = it->second.last_cycle;
    if (use <= produced) continue;  // consumed in the producing cycle
    values.push_back(LiveValue{spec.node(NodeId{u}).width, produced, use - 1});
  }
  std::stable_sort(values.begin(), values.end(),
                   [](const LiveValue& a, const LiveValue& b) {
                     return a.width > b.width;
                   });
  std::vector<std::vector<std::pair<unsigned, unsigned>>> busy;
  busy.reserve(values.size());
  for (const LiveValue& v : values) {
    busy.push_back({{v.first_boundary, v.last_boundary}});
  }
  const std::vector<unsigned> color = color_intervals(busy);
  if (!values.empty()) {
    const unsigned n_regs = *std::max_element(color.begin(), color.end()) + 1;
    dp.regs.assign(n_regs, RegInstance{0, UINT32_MAX, 0});
    for (std::size_t i = 0; i < values.size(); ++i) {
      RegInstance& r = dp.regs[color[i]];
      r.width = std::max(r.width, values[i].width);
      r.first_boundary = std::min(r.first_boundary, values[i].first_boundary);
      r.last_boundary = std::max(r.last_boundary, values[i].last_boundary);
    }
  }

  // ---- control -------------------------------------------------------------
  for (const MuxInstance& m : dp.muxes) dp.control_signals += log2_ceil(m.inputs);
  dp.control_signals += static_cast<unsigned>(dp.regs.size());
  return dp;
}

} // namespace hls
