#include "alloc/datapath.hpp"

#include <algorithm>

namespace hls {

FuClass fu_class_of(OpKind kind) {
  switch (kind) {
    case OpKind::Add:
      return FuClass::Adder;
    case OpKind::Sub:
    case OpKind::Neg:
      return FuClass::Subtractor;
    case OpKind::Mul:
      return FuClass::Multiplier;
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge:
    case OpKind::Eq:
    case OpKind::Ne:
      return FuClass::Comparator;
    case OpKind::Max:
    case OpKind::Min:
      return FuClass::MinMax;
    default:
      HLS_ASSERT(false, "no functional unit for structural/glue kinds");
  }
}

std::string_view fu_class_name(FuClass c) {
  switch (c) {
    case FuClass::Adder: return "adder";
    case FuClass::Subtractor: return "subtractor";
    case FuClass::Multiplier: return "multiplier";
    case FuClass::Comparator: return "comparator";
    case FuClass::MinMax: return "min/max";
  }
  return "?";
}

unsigned Datapath::total_register_bits() const {
  unsigned bits = 0;
  for (const RegInstance& r : regs) bits += r.width;
  return bits;
}

unsigned Datapath::fu_count(FuClass c) const {
  return static_cast<unsigned>(
      std::count_if(fus.begin(), fus.end(),
                    [c](const FuInstance& f) { return f.cls == c; }));
}

std::vector<unsigned> color_intervals(
    const std::vector<std::vector<std::pair<unsigned, unsigned>>>& busy) {
  std::vector<unsigned> color(busy.size(), 0);
  // occupied[k] = intervals already placed on color k.
  std::vector<std::vector<std::pair<unsigned, unsigned>>> occupied;
  auto conflicts = [](const std::vector<std::pair<unsigned, unsigned>>& xs,
                      const std::vector<std::pair<unsigned, unsigned>>& ys) {
    for (const auto& [a1, a2] : xs) {
      for (const auto& [b1, b2] : ys) {
        if (a1 <= b2 && b1 <= a2) return true;
      }
    }
    return false;
  };
  for (std::size_t i = 0; i < busy.size(); ++i) {
    unsigned k = 0;
    while (k < occupied.size() && conflicts(occupied[k], busy[i])) ++k;
    if (k == occupied.size()) occupied.emplace_back();
    occupied[k].insert(occupied[k].end(), busy[i].begin(), busy[i].end());
    color[i] = k;
  }
  return color;
}

} // namespace hls
