#pragma once
// Classic op-level allocation for conventional and BLC schedules.
//
// Functional units are allocated per operation class by first-fit interval
// coloring over the ops' cycle spans (widest ops first, so shared FUs take
// the maximum width of their users). Values whose producer and consumers sit
// in different cycles are registered whole; registers are shared across
// values with disjoint live spans the same way. Multiplexers are counted per
// FU input port from the number of distinct operand sources.

#include "alloc/datapath.hpp"
#include "sched/conventional.hpp"

namespace hls {

/// Allocates a datapath for an op-granular schedule over `spec` (the
/// original specification for the conventional flow, the kernel form for
/// BLC).
Datapath allocate_oplevel(const Dfg& spec, const OpSchedule& s);

} // namespace hls
