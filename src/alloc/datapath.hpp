#pragma once
// Datapath description produced by allocation/binding and consumed by the
// RTL area/performance model.
//
// Two allocators build this structure:
//   * allocate_oplevel()  — classic allocation for conventional / BLC
//     schedules: one functional unit class per operation kind, whole-value
//     registers, value-level multiplexer counting.
//   * allocate_bitlevel() — the paper's allocation for fragmented schedules:
//     adder-only FUs sized to fragment widths with same-operation affinity
//     binding, bit-level register liveness (only bits that cross a cycle
//     boundary are stored), and per-port mux counting.
//
// Both exclude the dedicated registers stabilizing input/output ports, as
// Table I's comparison does ("they coincide in both implementations").

#include <string>
#include <vector>

#include "ir/dfg.hpp"

namespace hls {

/// Functional-unit classes of the conventional component library.
enum class FuClass { Adder, Subtractor, Multiplier, Comparator, MinMax };

FuClass fu_class_of(OpKind kind);
std::string_view fu_class_name(FuClass c);

struct FuInstance {
  FuClass cls = FuClass::Adder;
  unsigned width = 0;   ///< datapath width (ripple length for adders)
  unsigned width2 = 0;  ///< second operand width (multipliers only)
  /// Operations bound to this FU, as (cycle, source op) pairs.
  std::vector<std::pair<unsigned, NodeId>> bound;
};

struct RegInstance {
  unsigned width = 0;
  /// Consecutive-boundary span [first, last] over which this register holds
  /// at least one live value (for reporting only).
  unsigned first_boundary = 0;
  unsigned last_boundary = 0;
};

struct MuxInstance {
  unsigned inputs = 0;  ///< k of a k:1 mux (always >= 2)
  unsigned width = 0;
};

/// One stored value slice: which bits of which node are held in which
/// register, from the boundary after `produced` until `last_use`. The
/// cycle-accurate datapath simulator uses this plan to verify that every
/// cross-cycle value actually has storage.
struct StoredRun {
  NodeId node;
  BitRange bits;
  unsigned produced = 0;   ///< cycle in which the bits are computed
  unsigned last_use = 0;   ///< last cycle reading them
  unsigned reg = 0;        ///< index into Datapath::regs
};

struct Datapath {
  std::vector<FuInstance> fus;
  std::vector<RegInstance> regs;
  std::vector<MuxInstance> muxes;
  std::vector<StoredRun> stored;  ///< register plan (bit-level allocator)
  unsigned states = 0;           ///< controller FSM states (= latency)
  unsigned control_signals = 0;  ///< mux selects + register load enables

  unsigned total_register_bits() const;
  unsigned fu_count(FuClass c) const;
};

/// First-fit interval coloring used by both allocators to share FUs and
/// registers across non-overlapping occupancy intervals. Items must be
/// processed widest-first by the caller for sensible widths; returns the
/// color (instance index) per item. `busy[i]` = inclusive cycle interval.
std::vector<unsigned> color_intervals(
    const std::vector<std::vector<std::pair<unsigned, unsigned>>>& busy);

} // namespace hls
