#include "dse/explorer.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "flow/json.hpp"
#include "obs/trace.hpp"
#include "sched/core.hpp"
#include "support/strings.hpp"

namespace hls {

namespace {

/// One grid candidate during planning (indices into the request's axes plus
/// the latency), in coverage order.
struct Candidate {
  std::size_t flow = 0, scheduler = 0, target = 0;
  unsigned latency = 0;
  bool priced = false;     ///< bound below is exact (builtin optimized flow)
  Objectives bound;        ///< §3.2 timing bound; area 0 = unknown
  bool keep = true;
  const char* prune_reason = nullptr;
};

/// Latencies of [lo, hi] in coverage order: endpoints first, then recursive
/// interval midpoints — so a point budget that truncates the sequence still
/// samples the whole range instead of only its low end.
std::vector<unsigned> coverage_order(unsigned lo, unsigned hi) {
  std::vector<unsigned> out;
  out.reserve(hi - lo + 1);
  out.push_back(lo);
  if (hi != lo) out.push_back(hi);
  std::vector<std::pair<unsigned, unsigned>> intervals{{lo, hi}};
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    const auto [a, b] = intervals[i];
    const unsigned m = a + (b - a) / 2;
    if (m == a || m == b) continue;
    out.push_back(m);
    intervals.push_back({a, m});
    intervals.push_back({m, b});
  }
  return out;
}

/// Copies `axis` with duplicates removed (first occurrence wins), noting
/// each drop so the echo in the result stays honest.
std::vector<std::string> dedup_axis(const char* what,
                                    const std::vector<std::string>& axis,
                                    std::vector<FlowDiagnostic>& diags) {
  std::vector<std::string> out;
  for (const std::string& v : axis) {
    if (std::find(out.begin(), out.end(), v) != out.end()) {
      diags.push_back({DiagSeverity::Note, "request",
                       strformat("duplicate %s '%s' ignored", what,
                                 v.c_str())});
      continue;
    }
    out.push_back(v);
  }
  return out;
}

double score_of(const Objectives& o, const ObjectiveWeights& w) {
  return w.latency * static_cast<double>(o.latency) + w.cycle_ns * o.cycle_ns +
         w.execution_ns * o.execution_ns +
         w.area * static_cast<double>(o.area_gates);
}

} // namespace

bool dominates(const Objectives& a, const Objectives& b) {
  if (a.latency > b.latency || a.cycle_ns > b.cycle_ns ||
      a.execution_ns > b.execution_ns || a.area_gates > b.area_gates) {
    return false;
  }
  return a.latency < b.latency || a.cycle_ns < b.cycle_ns ||
         a.execution_ns < b.execution_ns || a.area_gates < b.area_gates;
}

std::string ExploreResult::error_text() const {
  return hls::error_text(diagnostics);
}

Explorer::Explorer(SessionOptions options) : options_(options) {}

ExploreResult Explorer::run(const ExploreRequest& request) const {
  // Root span for the whole sweep; each evaluated grid point shows up as a
  // nested "session.run" span (run_batch workers inherit this context).
  ScopedSpan explore_span("explore", "dse");
  const auto t0 = std::chrono::steady_clock::now();
  ExploreResult out;
  out.spec_name = request.spec.name();
  out.latency_lo = request.latency_lo;
  out.latency_hi = request.latency_hi;
  out.budget = request.budget;
  out.prune = request.prune;
  out.weights = request.weights;
  out.timing = request.options.timing;
  out.flows = dedup_axis("flow", request.flows, out.diagnostics);
  out.schedulers =
      dedup_axis("scheduler", request.schedulers, out.diagnostics);
  out.targets = dedup_axis("target", request.targets, out.diagnostics);

  // --- request validation: every problem at once, Session conventions ----
  for (const auto& [what, axis] :
       {std::pair<const char*, const std::vector<std::string>*>{
            "flows", &out.flows},
        {"schedulers", &out.schedulers},
        {"targets", &out.targets}}) {
    if (axis->empty()) {
      out.diagnostics.push_back(
          {DiagSeverity::Error, "request",
           strformat("%s axis must be non-empty", what)});
    }
  }
  // Axis names are checked directly against the same three registries
  // Session::run's validate_request consults, with the same wording (all
  // problems reported at once).
  const auto check_names = [&](const std::vector<std::string>& names,
                               auto&& contains, const char* what,
                               const std::vector<std::string>& known) {
    for (const std::string& n : names) {
      if (contains(n)) continue;
      out.diagnostics.push_back(
          {DiagSeverity::Error, "registry",
           strformat("unknown %s '%s' (registered: %s)", what, n.c_str(),
                     join(known, ", ").c_str())});
    }
  };
  FlowRegistry& flow_reg = FlowRegistry::global();
  check_names(out.flows, [&](const std::string& n) { return flow_reg.contains(n); },
              "flow", flow_reg.names());
  check_names(out.schedulers,
              [&](const std::string& n) {
                return SchedulerRegistry::global().contains(n);
              },
              "scheduler", SchedulerRegistry::global().names());
  check_names(out.targets,
              [&](const std::string& n) {
                return TargetRegistry::global().contains(n);
              },
              "target", TargetRegistry::global().names());
  if (const std::optional<FlowDiagnostic> bad =
          validate_latency_range(request.latency_lo, request.latency_hi)) {
    out.diagnostics.push_back(*bad);
  }
  for (const FlowDiagnostic& d : out.diagnostics) {
    if (d.severity == DiagSeverity::Error) return out;
  }

  // --- planning: grid in coverage order, §3.2 bound pruning, budget ------
  // One artefact store for every evaluation of this run — private unless
  // the caller supplied a longer-lived (e.g. process-wide serving) cache.
  const auto cache = request.cache ? request.cache
                                   : std::make_shared<ArtifactCache>();
  const std::vector<unsigned> latencies =
      coverage_order(request.latency_lo, request.latency_hi);
  std::vector<Candidate> candidates;
  candidates.reserve(out.flows.size() * out.schedulers.size() *
                     out.targets.size() * latencies.size());
  // Round-robin across (flow, scheduler, target) groups so a budget cut
  // samples every group, with each group's latencies in coverage order.
  std::vector<Target> resolved_targets;
  resolved_targets.reserve(out.targets.size());
  for (const std::string& name : out.targets) {
    resolved_targets.push_back(resolve_target(name));
  }
  const std::size_t groups =
      out.flows.size() * out.schedulers.size() * out.targets.size();
  for (const unsigned lat : latencies) {
    for (std::size_t g = 0; g < groups; ++g) {
      Candidate c;
      c.target = g % out.targets.size();
      c.scheduler = (g / out.targets.size()) % out.schedulers.size();
      c.flow = g / (out.targets.size() * out.schedulers.size());
      c.latency = lat;
      // The §3.2 bound is exact for the builtin optimized flow with no
      // budget override: the report prices precisely
      // adder_depth(estimate_cycle_budget(critical, latency)) — both
      // available here from the memoized prep, before any stage runs.
      if (out.flows[c.flow] == "optimized") {
        // Pricing walks the whole grid before any evaluation; poll per
        // candidate (outside the try: the catch below is for unpriceable
        // specs and must not swallow a cancellation) so a deadline can
        // abort the planning phase too.
        request.cancel.poll();
        try {
          const Target& target = resolved_targets[c.target];
          const unsigned n_bits = cache->resolved_n_bits(
              request.spec, request.options.narrow, lat, 0, target.delay);
          const unsigned deltas = target.delay.adder_depth(n_bits);
          c.priced = true;
          c.bound = {lat, target.delay.cycle_ns(deltas),
                     target.delay.execution_ns(lat, deltas), 0};
        } catch (const Error&) {
          // A spec the prep stages reject (non-kernel node kinds, narrow
          // preconditions) cannot be priced; leave the candidate unpriced
          // and unprunable — evaluation will fail it with the same staged
          // diagnostics an uncached Session::run produces, keeping the
          // never-throws contract.
        }
      } else if (out.flows[c.flow] == "partitioned") {
        // The partitioned flow prices through the same one source of truth
        // its report uses (price_partition over the budget split), so the
        // bound is exact there too. Single-kernel partitions price as the
        // optimized flow — identical report by construction. An infeasible
        // split stays unpriced: evaluation fails the point with the
        // aggregated per-kernel diagnostic.
        request.cancel.poll();
        try {
          const Target& target = resolved_targets[c.target];
          const std::shared_ptr<const KernelPartition> part =
              cache->partition(request.spec, request.options.narrow);
          if (part->single()) {
            const unsigned n_bits = cache->resolved_n_bits(
                request.spec, request.options.narrow, lat, 0, target.delay);
            const unsigned deltas = target.delay.adder_depth(n_bits);
            c.priced = true;
            c.bound = {lat, target.delay.cycle_ns(deltas),
                       target.delay.execution_ns(lat, deltas), 0};
          } else {
            std::vector<unsigned> criticals;
            criticals.reserve(part->kernels.size());
            for (const PartitionKernel& k : part->kernels) {
              criticals.push_back(cache->critical_time(k.spec, false));
            }
            const BudgetSplit split =
                split_latency_budget(*part, criticals, lat);
            if (!validate_budget_split(*part, criticals, split, lat)) {
              const PartitionBound b =
                  price_partition(criticals, split, 0, target.delay);
              c.priced = true;
              c.bound = {b.composed_latency,
                         target.delay.cycle_ns(b.max_deltas),
                         target.delay.execution_ns(b.composed_latency,
                                                   b.max_deltas),
                         0};
            }
          }
        } catch (const Error&) {
          // Same rescue contract as above: unpriced, unprunable.
        }
      }
      candidates.push_back(c);
    }
  }

  if (request.prune) {
    // Latency-axis pruning: within one (flow, scheduler, target) series, a
    // priced candidate is skipped when another candidate of the same
    // series has an exact timing bound dominating its own (dominance is
    // transitive, so being dominated by anyone implies being dominated by
    // a kept candidate). Area is unknown (0) on both sides, so this is
    // dominance over the three timing axes — a latency point that would
    // have entered the frontier purely on area is lost, which is why every
    // prune lands in the report. Cross-series comparisons are deliberately
    // out: different targets/schedulers price area differently, and
    // pruning ripple points because cla is faster would defeat the targets
    // axis.
    for (Candidate& c : candidates) {
      if (!c.priced) continue;
      for (const Candidate& d : candidates) {
        if (&d == &c || !d.priced || d.flow != c.flow ||
            d.scheduler != c.scheduler || d.target != c.target) {
          continue;
        }
        if (dominates(d.bound, c.bound)) {
          c.keep = false;
          c.prune_reason = "dominated-bound";
          break;
        }
      }
    }
  }
  if (request.budget != 0) {
    unsigned kept = 0;
    for (Candidate& c : candidates) {
      if (!c.keep) continue;
      if (++kept > request.budget) {
        c.keep = false;
        c.prune_reason = "budget";
      }
    }
  }

  // --- evaluation: cached run_batch + rescue of unsound prunes -----------
  std::vector<const Candidate*> to_run;
  std::vector<const Candidate*> pruned_dom;  // dominated-bound prunes
  for (const Candidate& c : candidates) {
    if (c.keep) {
      to_run.push_back(&c);
    } else if (c.prune_reason == std::string("budget")) {
      out.pruned.push_back({out.flows[c.flow], out.schedulers[c.scheduler],
                            out.targets[c.target], c.latency, c.prune_reason,
                            c.bound});
    } else {
      pruned_dom.push_back(&c);
    }
  }
  SessionOptions session_options = options_;
  if (request.workers != 0) session_options.workers = request.workers;
  const Session session(session_options);
  std::vector<std::pair<const Candidate*, FlowResult>> done;
  while (!to_run.empty()) {
    // Between batch rounds is the coarse checkpoint; the fine-grained ones
    // ride each FlowRequest's token into the per-point scheduler loops (a
    // cancelled point comes back as a "cancelled" diagnostic, and the poll
    // here turns the round boundary into a hard stop).
    request.cancel.poll();
    ScopedSpan round_span("explore.round", "dse");
    if (round_span.live()) round_span.note("points=%zu", to_run.size());
    std::vector<FlowRequest> requests;
    requests.reserve(to_run.size());
    for (const Candidate* c : to_run) {
      requests.push_back({request.spec, out.flows[c->flow], c->latency, 0,
                          request.options, out.schedulers[c->scheduler],
                          out.targets[c->target], cache, request.cancel});
    }
    std::vector<FlowResult> results = session.run_batch(requests);
    // A trip *during* a round is folded into its point results by
    // Session::run; re-polling here (the cancelled state is sticky)
    // promotes it to the hard abort the Explorer contract promises, even
    // when the trip landed in the final round.
    request.cancel.poll();
    for (std::size_t i = 0; i < to_run.size(); ++i) {
      done.emplace_back(to_run[i], std::move(results[i]));
    }
    to_run.clear();
    // A dominated-bound prune is sound only while a point of its series
    // actually *delivers* the dominating bound. If the dominating
    // evaluation failed (possible with user-registered schedulers that
    // reject tight latencies), re-enqueue every pruned candidate no longer
    // timing-dominated by a successful point — so pruning never loses a
    // feasible point on the timing axes. Each round evaluates at least one
    // rescued candidate, so the loop terminates.
    for (auto it = pruned_dom.begin(); it != pruned_dom.end();) {
      if (request.budget != 0 && done.size() + to_run.size() >= request.budget) {
        break;  // the point budget is a hard cap, rescued or not
      }
      bool covered = false;
      for (const auto& [d, result] : done) {
        if (!result.ok || d->flow != (*it)->flow ||
            d->scheduler != (*it)->scheduler || d->target != (*it)->target) {
          continue;
        }
        const ImplementationReport& r = result.report;
        if (dominates({r.latency, r.cycle_ns, r.execution_ns, 0},
                      (*it)->bound)) {
          covered = true;
          break;
        }
      }
      if (covered) {
        ++it;
      } else {
        to_run.push_back(*it);
        it = pruned_dom.erase(it);
      }
    }
  }
  for (const Candidate* c : pruned_dom) {
    // Leftovers are "dominated-bound" only while a successful point really
    // delivers the dominating bound; a candidate the budget cap kept the
    // rescue loop from re-running is honestly a "budget" prune.
    bool covered = false;
    for (const auto& [d, result] : done) {
      if (!result.ok || d->flow != c->flow || d->scheduler != c->scheduler ||
          d->target != c->target) {
        continue;
      }
      const ImplementationReport& r = result.report;
      if (dominates({r.latency, r.cycle_ns, r.execution_ns, 0}, c->bound)) {
        covered = true;
        break;
      }
    }
    out.pruned.push_back({out.flows[c->flow], out.schedulers[c->scheduler],
                          out.targets[c->target], c->latency,
                          covered ? "dominated-bound" : "budget", c->bound});
  }

  // --- assembly: grid-ordered points, frontier, score --------------------
  std::sort(done.begin(), done.end(), [](const auto& a, const auto& b) {
    const Candidate& ca = *a.first;
    const Candidate& cb = *b.first;
    return std::tie(ca.flow, ca.scheduler, ca.target, ca.latency) <
           std::tie(cb.flow, cb.scheduler, cb.target, cb.latency);
  });
  out.points.reserve(done.size());
  for (auto& [c, result] : done) {
    ExplorePoint p;
    p.flow = out.flows[c->flow];
    p.scheduler = out.schedulers[c->scheduler];
    p.target = out.targets[c->target];
    p.latency = c->latency;
    p.result = std::move(result);
    if (p.result.ok) {
      const ImplementationReport& r = p.result.report;
      p.objectives = {r.latency, r.cycle_ns, r.execution_ns, r.area.total()};
      p.score = score_of(p.objectives, request.weights);
    } else {
      ++out.failed;
    }
    out.points.push_back(std::move(p));
  }
  out.evaluated = out.points.size();
  // Sort the pruned report the same grid order for stable output.
  std::sort(out.pruned.begin(), out.pruned.end(),
            [](const PrunedPoint& a, const PrunedPoint& b) {
              return std::tie(a.flow, a.scheduler, a.target, a.latency) <
                     std::tie(b.flow, b.scheduler, b.target, b.latency);
            });

  for (std::size_t i = 0; i < out.points.size(); ++i) {
    if (!out.points[i].result.ok) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < out.points.size() && !dominated; ++j) {
      dominated = j != i && out.points[j].result.ok &&
                  dominates(out.points[j].objectives, out.points[i].objectives);
    }
    if (!dominated) {
      out.points[i].on_frontier = true;
      out.frontier.push_back(i);
    }
  }
  for (const std::size_t i : out.frontier) {
    if (!out.best || out.points[i].score < out.points[*out.best].score) {
      out.best = i;
    }
  }
  if (out.failed != 0) {
    out.diagnostics.push_back(
        {DiagSeverity::Warning, "explore",
         strformat("%zu of %zu evaluated points failed (see their "
                   "diagnostics); they are excluded from the frontier",
                   out.failed, out.evaluated)});
  }
  out.cache_stats = cache->stats();
  out.ok = true;
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

// --- serialization -----------------------------------------------------------

namespace {

void append_axis(std::ostringstream& os, const char* name,
                 const std::vector<std::string>& values) {
  os << "\"" << name << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(values[i]) << "\"";
  }
  os << "]";
}

void append_objectives(std::ostringstream& os, const Objectives& o,
                       bool with_area) {
  os << "\"cycle_ns\":" << json_number(o.cycle_ns)
     << ",\"execution_ns\":" << json_number(o.execution_ns);
  if (with_area) os << ",\"area_gates\":" << o.area_gates;
}

void append_counter(std::ostringstream& os, const char* name,
                    const CacheStats::Counter& c) {
  os << "\"" << name << "\":{\"hits\":" << c.hits << ",\"misses\":" << c.misses
     << "}";
}

} // namespace

std::string to_json(const ExploreResult& r) {
  std::ostringstream os;
  os << "{\"schema\":\"fraghls-explore-v1\",";
  os << "\"ok\":" << (r.ok ? "true" : "false") << ",";
  os << "\"spec\":\"" << json_escape(r.spec_name) << "\",";
  os << "\"axes\":{";
  append_axis(os, "flows", r.flows);
  os << ",";
  append_axis(os, "schedulers", r.schedulers);
  os << ",";
  append_axis(os, "targets", r.targets);
  os << ",\"latency\":[" << r.latency_lo << "," << r.latency_hi << "]},";
  os << "\"budget\":" << r.budget << ",";
  os << "\"prune\":" << (r.prune ? "true" : "false") << ",";
  os << "\"weights\":{\"latency\":" << json_number(r.weights.latency)
     << ",\"cycle_ns\":" << json_number(r.weights.cycle_ns)
     << ",\"execution_ns\":" << json_number(r.weights.execution_ns)
     << ",\"area\":" << json_number(r.weights.area) << "},";
  os << "\"evaluated\":" << r.evaluated << ",";
  os << "\"failed\":" << r.failed << ",";
  os << "\"points\":[";
  for (std::size_t i = 0; i < r.points.size(); ++i) {
    const ExplorePoint& p = r.points[i];
    if (i != 0) os << ",";
    os << "{\"flow\":\"" << json_escape(p.flow) << "\",\"scheduler\":\""
       << json_escape(p.scheduler) << "\",\"target\":\""
       << json_escape(p.target) << "\",\"latency\":" << p.latency
       << ",\"ok\":" << (p.result.ok ? "true" : "false");
    if (p.result.ok) {
      os << ",\"cycle_deltas\":" << p.result.report.cycle_deltas << ",";
      if (p.result.transform) {
        os << "\"n_bits\":" << p.result.transform->n_bits << ",";
      }
      append_objectives(os, p.objectives, /*with_area=*/true);
      os << ",\"score\":" << json_number(p.score)
         << ",\"frontier\":" << (p.on_frontier ? "true" : "false");
    } else {
      os << ",\"error\":\"" << json_escape(p.result.error_text()) << "\"";
    }
    os << "}";
  }
  os << "],\"frontier\":[";
  for (std::size_t i = 0; i < r.frontier.size(); ++i) {
    if (i != 0) os << ",";
    os << r.frontier[i];
  }
  os << "]";
  if (r.best) os << ",\"best\":" << *r.best;
  os << ",\"pruned\":[";
  for (std::size_t i = 0; i < r.pruned.size(); ++i) {
    const PrunedPoint& p = r.pruned[i];
    if (i != 0) os << ",";
    os << "{\"flow\":\"" << json_escape(p.flow) << "\",\"scheduler\":\""
       << json_escape(p.scheduler) << "\",\"target\":\""
       << json_escape(p.target) << "\",\"latency\":" << p.latency
       << ",\"reason\":\"" << json_escape(p.reason) << "\"";
    if (p.reason == "dominated-bound") {
      os << ",\"bound\":{";
      append_objectives(os, p.bound, /*with_area=*/false);
      os << "}";
    }
    os << "}";
  }
  os << "],\"cache\":{";
  append_counter(os, "kernel", r.cache_stats.kernel);
  os << ",";
  append_counter(os, "narrow", r.cache_stats.narrow);
  os << ",";
  append_counter(os, "prep", r.cache_stats.prep);
  os << ",";
  append_counter(os, "transform", r.cache_stats.transform);
  os << ",";
  append_counter(os, "schedule", r.cache_stats.schedule);
  os << ",";
  append_counter(os, "datapath", r.cache_stats.datapath);
  os << ",";
  append_counter(os, "total", r.cache_stats.total());
  os << ",\"hit_rate\":" << json_number(r.cache_stats.total().hit_rate());
  os << "},\"diagnostics\":[";
  for (std::size_t i = 0; i < r.diagnostics.size(); ++i) {
    if (i != 0) os << ",";
    os << to_json(r.diagnostics[i]);
  }
  os << "]";
  // Wall-clock only on request (FlowOptions::timing), so default output is
  // byte-stable and golden-testable.
  if (r.timing) os << ",\"wall_ms\":" << json_number(r.wall_ms, 3);
  os << "}";
  return os.str();
}

std::string to_csv(const ExploreResult& r) {
  std::ostringstream os;
  os << "flow,scheduler,target,latency,ok,cycle_deltas,cycle_ns,"
        "execution_ns,area_gates,score,frontier\n";
  for (const ExplorePoint& p : r.points) {
    os << p.flow << "," << p.scheduler << "," << p.target << "," << p.latency
       << "," << (p.result.ok ? 1 : 0) << ",";
    if (p.result.ok) {
      os << p.result.report.cycle_deltas << ","
         << strformat("%.4f", p.objectives.cycle_ns) << ","
         << strformat("%.4f", p.objectives.execution_ns) << ","
         << p.objectives.area_gates << "," << strformat("%.4f", p.score) << ","
         << (p.on_frontier ? 1 : 0);
    } else {
      os << ",,,,,0";
    }
    os << "\n";
  }
  return os.str();
}

} // namespace hls
