#include "dse/cache.hpp"

#include <utility>

#include "alloc/bitlevel.hpp"
#include "kernel/narrow.hpp"
#include "sched/core.hpp"
#include "timing/critical_path.hpp"

namespace hls {

namespace {

// Stage-parameter mixing: every composite key starts from the spec digest
// and folds in the parameters that can change the artefact.

Digest with_narrow(Digest d, bool narrow) {
  d.mix(narrow ? 1 : 0);
  return d;
}

Digest with_point(Digest d, bool narrow, unsigned latency, unsigned n_bits) {
  d = with_narrow(d, narrow);
  d.mix(latency);
  d.mix(n_bits);
  return d;
}

Digest with_scheduler(Digest d, const std::string& scheduler) {
  d.mix_bytes(scheduler.data(), scheduler.size());
  return d;
}

} // namespace

CacheStats::Counter CacheStats::total() const {
  Counter t;
  for (const Counter* c : {&kernel, &narrow, &prep, &transform, &schedule,
                           &datapath}) {
    t.hits += c->hits;
    t.misses += c->misses;
  }
  return t;
}

template <typename V, typename Compute>
std::shared_ptr<const V> ArtifactCache::get_or_compute(
    Table<V>& table, CacheStats::Counter& counter, const Key& key,
    Compute&& compute) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = table.find(key);
    if (it != table.end()) {
      ++counter.hits;
      return it->second;
    }
  }
  // Compute outside the lock: stage functions are pure, so a racing worker
  // computing the same key produces an identical value; first insert wins.
  std::shared_ptr<const V> value =
      std::make_shared<const V>(std::forward<Compute>(compute)());
  const std::lock_guard<std::mutex> lock(mu_);
  ++counter.misses;
  const auto [it, inserted] = table.emplace(key, std::move(value));
  return it->second;
}

std::shared_ptr<const KernelArtifact> ArtifactCache::kernel_at(
    const Digest& d, const Dfg& spec) {
  return get_or_compute(kernels_, stats_.kernel, key_of(d), [&] {
    KernelArtifact art;
    art.already_kernel = is_kernel_form(spec);
    art.kernel = art.already_kernel ? spec : extract_kernel(spec, &art.stats);
    return art;
  });
}

std::shared_ptr<const Dfg> ArtifactCache::narrowed_at(const Digest& d,
                                                      const Dfg& spec) {
  return get_or_compute(narrowed_, stats_.narrow, key_of(d), [&] {
    return narrow_widths(kernel_at(d, spec)->kernel);
  });
}

std::shared_ptr<const TransformPrep> ArtifactCache::prep_at(const Digest& d,
                                                            const Dfg& spec,
                                                            bool narrow) {
  const Key key = key_of(with_narrow(d, narrow));
  return get_or_compute(preps_, stats_.prep, key, [&] {
    return prepare_transform(narrow ? *narrowed_at(d, spec)
                                    : kernel_at(d, spec)->kernel);
  });
}

unsigned ArtifactCache::n_bits_at(const Digest& d, const Dfg& spec,
                                  bool narrow, unsigned latency,
                                  unsigned n_bits_override,
                                  const DelayModel& delay) {
  if (n_bits_override != 0) return n_bits_override;
  return estimate_cycle_budget(prep_at(d, spec, narrow)->critical, latency,
                               delay);
}

std::shared_ptr<const TransformResult> ArtifactCache::transform_at(
    const Digest& d, const Dfg& spec, bool narrow, unsigned latency,
    unsigned n_bits) {
  const Key key = key_of(with_point(d, narrow, latency, n_bits));
  return get_or_compute(transforms_, stats_.transform, key, [&] {
    return transform_prepared(*prep_at(d, spec, narrow), latency, n_bits);
  });
}

std::shared_ptr<const FragSchedule> ArtifactCache::schedule_at(
    const Digest& d, const std::string& scheduler, const Dfg& spec,
    bool narrow, unsigned latency, unsigned n_bits) {
  const Key key =
      key_of(with_scheduler(with_point(d, narrow, latency, n_bits), scheduler));
  return get_or_compute(schedules_, stats_.schedule, key, [&] {
    return run_scheduler(scheduler,
                         *transform_at(d, spec, narrow, latency, n_bits));
  });
}

std::shared_ptr<const KernelArtifact> ArtifactCache::kernel(const Dfg& spec) {
  return kernel_at(digest_of(spec), spec);
}

std::shared_ptr<const Dfg> ArtifactCache::narrowed(const Dfg& spec) {
  return narrowed_at(digest_of(spec), spec);
}

std::shared_ptr<const TransformPrep> ArtifactCache::prep(const Dfg& spec,
                                                         bool narrow) {
  return prep_at(digest_of(spec), spec, narrow);
}

unsigned ArtifactCache::resolved_n_bits(const Dfg& spec, bool narrow,
                                        unsigned latency,
                                        unsigned n_bits_override,
                                        const DelayModel& delay) {
  return n_bits_at(digest_of(spec), spec, narrow, latency, n_bits_override,
                   delay);
}

std::shared_ptr<const TransformResult> ArtifactCache::transform(
    const Dfg& spec, bool narrow, unsigned latency, unsigned n_bits_override,
    const DelayModel& delay) {
  const Digest d = digest_of(spec);
  const unsigned n_bits =
      n_bits_at(d, spec, narrow, latency, n_bits_override, delay);
  return transform_at(d, spec, narrow, latency, n_bits);
}

std::shared_ptr<const FragSchedule> ArtifactCache::fragment_schedule(
    const std::string& scheduler, const Dfg& spec, bool narrow,
    unsigned latency, unsigned n_bits_override, const DelayModel& delay) {
  const Digest d = digest_of(spec);
  const unsigned n_bits =
      n_bits_at(d, spec, narrow, latency, n_bits_override, delay);
  return schedule_at(d, scheduler, spec, narrow, latency, n_bits);
}

std::shared_ptr<const Datapath> ArtifactCache::bitlevel_datapath(
    const std::string& scheduler, const Dfg& spec, bool narrow,
    unsigned latency, unsigned n_bits_override, const DelayModel& delay) {
  const Digest d = digest_of(spec);
  const unsigned n_bits =
      n_bits_at(d, spec, narrow, latency, n_bits_override, delay);
  const Key key =
      key_of(with_scheduler(with_point(d, narrow, latency, n_bits), scheduler));
  return get_or_compute(datapaths_, stats_.datapath, key, [&] {
    return allocate_bitlevel(
        *transform_at(d, spec, narrow, latency, n_bits),
        *schedule_at(d, scheduler, spec, narrow, latency, n_bits));
  });
}

CacheStats ArtifactCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ArtifactCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  stats_ = {};
  kernels_.clear();
  narrowed_.clear();
  preps_.clear();
  transforms_.clear();
  schedules_.clear();
  datapaths_.clear();
}

} // namespace hls
