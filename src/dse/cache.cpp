#include "dse/cache.hpp"

#include <algorithm>
#include <utility>

#include "alloc/bitlevel.hpp"
#include "kernel/narrow.hpp"
#include "obs/trace.hpp"
#include "sched/core.hpp"
#include "support/failpoint.hpp"
#include "timing/critical_path.hpp"

namespace hls {

namespace {

// Stage-parameter mixing: every composite key starts from the spec digest
// and folds in the parameters that can change the artefact. (The stage tag
// itself is mixed in key_of.)

Digest with_narrow(Digest d, bool narrow) {
  d.mix(narrow ? 1 : 0);
  return d;
}

Digest with_point(Digest d, bool narrow, unsigned latency, unsigned n_bits) {
  d = with_narrow(d, narrow);
  d.mix(latency);
  d.mix(n_bits);
  return d;
}

Digest with_scheduler(Digest d, const std::string& scheduler) {
  d.mix_bytes(scheduler.data(), scheduler.size());
  return d;
}

// Approximate resident-byte accounting for the LRU bound. Estimates count
// the owned heap of each artefact (vector capacities, string capacities);
// exactness does not matter — the bound is a sizing knob, not an allocator —
// but the estimate must grow with the artefact so eviction pressure lands
// on the heavy entries.

std::size_t approx_bytes(const Dfg& g) {
  std::size_t n = sizeof(Dfg) + g.name().capacity();
  for (const Node& node : g.nodes()) {
    n += sizeof(Node) + node.operands.capacity() * sizeof(Operand) +
         node.name.capacity();
  }
  return n;
}

std::size_t approx_bytes(const KernelArtifact& a) {
  return sizeof(KernelArtifact) + approx_bytes(a.kernel);
}

std::size_t approx_bytes(const TransformPrep& p) {
  return sizeof(TransformPrep) + approx_bytes(p.kernel);
}

std::size_t approx_bytes(const TransformResult& t) {
  return sizeof(TransformResult) + approx_bytes(t.spec) +
         t.adds.capacity() * sizeof(TransformedAdd);
}

std::size_t approx_bytes(const FragSchedule& s) {
  std::size_t n = sizeof(FragSchedule) +
                  s.schedule.rows.capacity() * sizeof(ScheduleRow);
  for (const FragSchedule::FuOp& op : s.fu_ops) {
    n += sizeof(FragSchedule::FuOp) + op.nodes.capacity() * sizeof(NodeId);
  }
  return n;
}

std::size_t approx_bytes(const Datapath& d) {
  std::size_t n = sizeof(Datapath) +
                  d.regs.capacity() * sizeof(RegInstance) +
                  d.muxes.capacity() * sizeof(MuxInstance) +
                  d.stored.capacity() * sizeof(StoredRun);
  for (const FuInstance& fu : d.fus) {
    n += sizeof(FuInstance) +
         fu.bound.capacity() * sizeof(std::pair<unsigned, NodeId>);
  }
  return n;
}

std::size_t approx_bytes(const KernelPartition& p) {
  std::size_t n = sizeof(KernelPartition) +
                  p.cut_edges.capacity() * sizeof(KernelPartition::CutEdge);
  for (const PartitionKernel& k : p.kernels) {
    n += sizeof(PartitionKernel) + approx_bytes(k.spec) +
         k.nodes.capacity() * sizeof(NodeId);
    for (const PartitionKernel::Port& port : k.imports) {
      n += sizeof(PartitionKernel::Port) + port.name.capacity();
    }
    for (const PartitionKernel::Port& port : k.exports) {
      n += sizeof(PartitionKernel::Port) + port.name.capacity();
    }
  }
  return n;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

} // namespace

CacheStats::Counter CacheStats::total() const {
  Counter t;
  for (const Counter* c : {&kernel, &narrow, &prep, &transform, &schedule,
                           &datapath, &partition}) {
    t.hits += c->hits;
    t.misses += c->misses;
    t.evictions += c->evictions;
    t.resident_bytes += c->resident_bytes;
  }
  return t;
}

ArtifactCache::ArtifactCache(ArtifactCacheOptions options)
    : options_(options) {
  options_.shards = round_up_pow2(options_.shards == 0 ? 1 : options_.shards);
  per_shard_bound_ = options_.max_resident_bytes == 0
                         ? 0
                         : options_.max_resident_bytes / options_.shards;
  // A bound small enough to round a shard's share to zero still means
  // "bounded", not "unbounded": keep at most one entry's worth per shard.
  if (options_.max_resident_bytes != 0 && per_shard_bound_ == 0) {
    per_shard_bound_ = 1;
  }
  shards_ = std::vector<Shard>(options_.shards);
}

namespace {

/// Span names per cache stage; static strings so TraceSpan::category-style
/// lifetime rules hold for the copied name too.
const char* cache_span_name(unsigned stage) {
  static const char* const names[] = {
      "cache.kernel",   "cache.narrow",   "cache.prep",     "cache.transform",
      "cache.schedule", "cache.datapath", "cache.partition"};
  return stage < 7 ? names[stage] : "cache.unknown";
}

}  // namespace

void ArtifactCache::evict_locked(Shard& shard) {
  if (per_shard_bound_ == 0) return;
  // Fault-injection site for the eviction sweep of a bounded cache (fires
  // on every bounded insert, whether or not a victim is dropped, so chaos
  // runs do not depend on filling the shard first). An injected throw
  // unwinds with the shard consistent — at worst transiently over its
  // share, repaired by the next insert's sweep.
  failpoint("cache.evict");
  ScopedSpan span("cache.evict", "cache");
  std::uint64_t victims = 0;
  // Oldest-first until the shard fits. The just-inserted entry sits at the
  // hot end, so it is evicted only when it alone exceeds the shard's share:
  // its caller already holds the shared_ptr, the cache just declines to
  // retain an artefact that would blow the bound by itself. resident <=
  // bound is therefore a hard invariant, not a best effort — that is what
  // lets --cache-mb size a serving process.
  while (shard.resident > per_shard_bound_ && !shard.lru.empty()) {
    const Key victim = shard.lru.front();
    const auto it = shard.table.find(victim);
    HLS_ASSERT(it != shard.table.end(), "LRU key missing from shard table");
    shard.resident -= it->second.bytes;
    counters_[it->second.stage].evictions.fetch_add(
        1, std::memory_order_relaxed);
    counters_[it->second.stage].resident_bytes.fetch_sub(
        it->second.bytes, std::memory_order_relaxed);
    shard.lru.pop_front();
    shard.table.erase(it);
    ++victims;
  }
  if (span.live()) {
    span.note("victims=%llu", static_cast<unsigned long long>(victims));
  }
}

template <typename V, typename Compute>
std::shared_ptr<const V> ArtifactCache::get_or_compute(Stage stage,
                                                       const Key& key,
                                                       Compute&& compute) {
  Shard& shard = shard_for(key);
  failpoint("cache.lookup");
  {
    // The lookup span covers only the table probe; compute time belongs to
    // the enclosing flow-stage span, not the cache.
    ScopedSpan span(cache_span_name(stage), "cache");
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.table.find(key);
    if (it != shard.table.end()) {
      counters_[stage].hits.fetch_add(1, std::memory_order_relaxed);
      // Touch: move to the hot end of the recency list.
      shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru);
      if (span.live()) span.note("hit");
      return std::static_pointer_cast<const V>(it->second.value);
    }
    if (span.live()) span.note("miss");
  }
  // Compute outside the lock: stage functions are pure, so a racing worker
  // computing the same key produces an identical value; first insert wins.
  std::shared_ptr<const V> value =
      std::make_shared<const V>(std::forward<Compute>(compute)());
  const std::size_t bytes =
      approx_bytes(*value) + sizeof(Entry) + 2 * sizeof(Key);
  failpoint("cache.insert");
  ScopedSpan span("cache.insert", "cache");
  if (span.live()) {
    span.note("stage=%s bytes=%llu", cache_span_name(stage),
              static_cast<unsigned long long>(bytes));
  }
  const std::lock_guard<std::mutex> lock(shard.mu);
  counters_[stage].misses.fetch_add(1, std::memory_order_relaxed);
  const auto [it, inserted] = shard.table.try_emplace(key);
  if (!inserted) {
    // Lost the race; serve the winner's (identical) value.
    return std::static_pointer_cast<const V>(it->second.value);
  }
  it->second.value = value;
  it->second.bytes = bytes;
  it->second.stage = stage;
  it->second.lru = shard.lru.insert(shard.lru.end(), key);
  shard.resident += bytes;
  counters_[stage].resident_bytes.fetch_add(bytes, std::memory_order_relaxed);
  evict_locked(shard);
  return value;
}

std::shared_ptr<const KernelArtifact> ArtifactCache::kernel_at(
    const Digest& d, const Dfg& spec) {
  return get_or_compute<KernelArtifact>(kKernel, key_of(d, kKernel), [&] {
    KernelArtifact art;
    art.already_kernel = is_kernel_form(spec);
    art.kernel = art.already_kernel ? spec : extract_kernel(spec, &art.stats);
    return art;
  });
}

std::shared_ptr<const Dfg> ArtifactCache::narrowed_at(const Digest& d,
                                                      const Dfg& spec) {
  return get_or_compute<Dfg>(kNarrow, key_of(d, kNarrow), [&] {
    return narrow_widths(kernel_at(d, spec)->kernel);
  });
}

std::shared_ptr<const TransformPrep> ArtifactCache::prep_at(const Digest& d,
                                                            const Dfg& spec,
                                                            bool narrow) {
  const Key key = key_of(with_narrow(d, narrow), kPrep);
  return get_or_compute<TransformPrep>(kPrep, key, [&] {
    return prepare_transform(narrow ? *narrowed_at(d, spec)
                                    : kernel_at(d, spec)->kernel);
  });
}

unsigned ArtifactCache::n_bits_at(const Digest& d, const Dfg& spec,
                                  bool narrow, unsigned latency,
                                  unsigned n_bits_override,
                                  const DelayModel& delay) {
  if (n_bits_override != 0) return n_bits_override;
  return estimate_cycle_budget(prep_at(d, spec, narrow)->critical, latency,
                               delay);
}

std::shared_ptr<const TransformResult> ArtifactCache::transform_at(
    const Digest& d, const Dfg& spec, bool narrow, unsigned latency,
    unsigned n_bits, const CancelToken& cancel) {
  const Key key = key_of(with_point(d, narrow, latency, n_bits), kTransform);
  return get_or_compute<TransformResult>(kTransform, key, [&] {
    cancel.poll();
    return transform_prepared(*prep_at(d, spec, narrow), latency, n_bits);
  });
}

std::shared_ptr<const FragSchedule> ArtifactCache::schedule_at(
    const Digest& d, const std::string& scheduler, const Dfg& spec,
    bool narrow, unsigned latency, unsigned n_bits,
    const CancelToken& cancel) {
  const Key key = key_of(
      with_scheduler(with_point(d, narrow, latency, n_bits), scheduler),
      kSchedule);
  return get_or_compute<FragSchedule>(kSchedule, key, [&] {
    // The strategy ticks checkpoints per committed fragment; a trip unwinds
    // out of get_or_compute before any insert, leaving no entry behind.
    SchedulerOptions opts;
    opts.cancel = cancel;
    return run_scheduler(
        scheduler, *transform_at(d, spec, narrow, latency, n_bits, cancel),
        opts);
  });
}

std::shared_ptr<const KernelArtifact> ArtifactCache::kernel(const Dfg& spec) {
  return kernel_at(digest_of(spec), spec);
}

std::shared_ptr<const Dfg> ArtifactCache::narrowed(const Dfg& spec) {
  return narrowed_at(digest_of(spec), spec);
}

std::shared_ptr<const TransformPrep> ArtifactCache::prep(const Dfg& spec,
                                                         bool narrow) {
  return prep_at(digest_of(spec), spec, narrow);
}

unsigned ArtifactCache::resolved_n_bits(const Dfg& spec, bool narrow,
                                        unsigned latency,
                                        unsigned n_bits_override,
                                        const DelayModel& delay) {
  return n_bits_at(digest_of(spec), spec, narrow, latency, n_bits_override,
                   delay);
}

std::shared_ptr<const TransformResult> ArtifactCache::transform(
    const Dfg& spec, bool narrow, unsigned latency, unsigned n_bits_override,
    const DelayModel& delay, const CancelToken& cancel) {
  const Digest d = digest_of(spec);
  const unsigned n_bits =
      n_bits_at(d, spec, narrow, latency, n_bits_override, delay);
  return transform_at(d, spec, narrow, latency, n_bits, cancel);
}

std::shared_ptr<const FragSchedule> ArtifactCache::fragment_schedule(
    const std::string& scheduler, const Dfg& spec, bool narrow,
    unsigned latency, unsigned n_bits_override, const DelayModel& delay,
    const CancelToken& cancel) {
  const Digest d = digest_of(spec);
  const unsigned n_bits =
      n_bits_at(d, spec, narrow, latency, n_bits_override, delay);
  return schedule_at(d, scheduler, spec, narrow, latency, n_bits, cancel);
}

std::shared_ptr<const Datapath> ArtifactCache::bitlevel_datapath(
    const std::string& scheduler, const Dfg& spec, bool narrow,
    unsigned latency, unsigned n_bits_override, const DelayModel& delay,
    const CancelToken& cancel) {
  const Digest d = digest_of(spec);
  const unsigned n_bits =
      n_bits_at(d, spec, narrow, latency, n_bits_override, delay);
  const Key key = key_of(
      with_scheduler(with_point(d, narrow, latency, n_bits), scheduler),
      kDatapath);
  return get_or_compute<Datapath>(kDatapath, key, [&] {
    cancel.poll();
    return allocate_bitlevel(
        *transform_at(d, spec, narrow, latency, n_bits, cancel),
        *schedule_at(d, scheduler, spec, narrow, latency, n_bits, cancel));
  });
}

std::shared_ptr<const KernelPartition> ArtifactCache::partition(
    const Dfg& spec, bool narrow) {
  const Digest d = digest_of(spec);
  const Key key = key_of(with_narrow(d, narrow), kPartition);
  return get_or_compute<KernelPartition>(kPartition, key, [&] {
    return partition_kernel(narrow ? *narrowed_at(d, spec)
                                   : kernel_at(d, spec)->kernel);
  });
}

unsigned ArtifactCache::critical_time(const Dfg& spec, bool narrow) {
  const Digest d = digest_of(spec);
  return prep_at(d, spec, narrow)->critical;
}

CacheStats ArtifactCache::stats() const {
  CacheStats s;
  CacheStats::Counter* out[kStageCount] = {&s.kernel, &s.narrow, &s.prep,
                                           &s.transform, &s.schedule,
                                           &s.datapath, &s.partition};
  for (unsigned i = 0; i < kStageCount; ++i) {
    out[i]->hits = counters_[i].hits.load(std::memory_order_relaxed);
    out[i]->misses = counters_[i].misses.load(std::memory_order_relaxed);
    out[i]->evictions =
        counters_[i].evictions.load(std::memory_order_relaxed);
    out[i]->resident_bytes =
        counters_[i].resident_bytes.load(std::memory_order_relaxed);
  }
  return s;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
ArtifactCache::resident_keys() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.table) out.emplace_back(key.a, key.b);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ArtifactCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    shard.table.clear();
    shard.lru.clear();
    shard.resident = 0;
  }
  for (AtomicCounter& c : counters_) {
    c.hits.store(0, std::memory_order_relaxed);
    c.misses.store(0, std::memory_order_relaxed);
    c.evictions.store(0, std::memory_order_relaxed);
    c.resident_bytes.store(0, std::memory_order_relaxed);
  }
}

} // namespace hls
