#pragma once
// hls::Explorer — design-space exploration over the Session flow engine.
//
// The paper's core claim is a trade-off (fragmentation buys a shorter cycle
// at the same latency for near-zero area), so the interesting output of the
// toolchain is not one implementation but a *frontier*: the non-dominated
// set over (latency, cycle_ns, execution_ns, area gates) across every
// combination of flow x scheduler x target x latency a designer would
// consider. Explorer turns a point evaluator into that frontier engine:
//
//   ExploreRequest req;
//   req.spec = elliptic();
//   req.targets = {"paper-ripple", "cla"};
//   req.latency_lo = 3; req.latency_hi = 15;
//   ExploreResult r = Explorer().run(req);
//   for (std::size_t i : r.frontier) { ... r.points[i] ... }
//
// Three mechanisms keep a large grid affordable:
//   * an ArtifactCache shared by every evaluation, so only stages whose
//     inputs changed re-run (targets with equal budgets share transforms,
//     schedules and datapaths wholesale);
//   * §3.2 bound pruning — for the "optimized" flow with no budget
//     override, (latency, cycle_ns, execution_ns) of a candidate are known
//     *exactly* before any stage runs (the report prices
//     adder_depth(estimate_cycle_budget(critical, latency)) and the
//     critical time is memoized), so latency points whose bound is
//     dominated on those axes by another point of the same
//     (flow, scheduler, target) series are skipped — typically the
//     saturated high-latency tail where the budget stops shrinking. If a
//     dominating candidate's own evaluation fails (user-registered
//     schedulers may reject tight latencies), the points it pruned are
//     rescued and evaluated after all, so pruning never loses a feasible
//     point on the timing axes. Area is unknown at bound time, so pruning
//     can still drop a point that would have entered the frontier purely
//     on area — every skipped candidate is therefore recorded in `pruned`
//     with its bound, and `prune = false` restores exhaustive coverage;
//   * the Session::run_batch thread pool fans surviving points out.
//
// Every evaluated point's FlowResult is bit-identical to an uncached
// Session::run of the same request (the StageCache contract; pinned across
// all registry suites by tests/dse_test.cpp).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dse/cache.hpp"
#include "flow/session.hpp"

namespace hls {

/// Linear objective weights for ranking frontier points (ExplorePoint::
/// score = latency*latency_w + cycle_ns*cycle_w + execution_ns*execution_w
/// + area_gates*area_w). Only the *relative* magnitudes matter; the default
/// ranks by cycle length, the paper's headline metric. Weights never affect
/// which points are evaluated or which are on the frontier — dominance is
/// weight-free — only the ordering and ExploreResult::best.
struct ObjectiveWeights {
  double latency = 0;
  double cycle_ns = 1;
  double execution_ns = 0;
  double area = 0;
};

/// One exploration job: a spec plus the axes of the grid.
struct ExploreRequest {
  Dfg spec;
  std::vector<std::string> flows = {"optimized"};
  std::vector<std::string> schedulers = {"list"};
  std::vector<std::string> targets = {kDefaultTargetName};
  unsigned latency_lo = 1;
  unsigned latency_hi = 1;
  FlowOptions options;
  ObjectiveWeights weights;
  /// Maximum points to evaluate; 0 = unlimited. Excess candidates (in
  /// coverage order — see Explorer::run) are reported as pruned "budget".
  unsigned budget = 0;
  /// §3.2 dominated-bound pruning (see file comment). On by default.
  bool prune = true;
  /// Worker threads for the evaluation batch; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Artefact store shared by every evaluation. Empty (the default) means
  /// the Explorer creates a private cache for this run — the historical
  /// behaviour. A long-lived caller (the serve daemon) passes its
  /// process-wide cache here so kernels, transforms and schedules are
  /// shared *across* requests; ExploreResult::cache_stats then snapshots
  /// the shared counters after the run.
  std::shared_ptr<ArtifactCache> cache;
  /// Cooperative cancellation (support/cancel.hpp): polled per candidate
  /// during pricing and between evaluation rounds, and threaded into every
  /// per-point FlowRequest. When it trips, Explorer::run throws
  /// CancelledError — unlike malformed requests, cancellation is an abort,
  /// not a result (the serve layer maps it to its "deadline" envelope). A
  /// shared cache is left exactly as if the exploration never started.
  CancelToken cancel;
};

/// The objective tuple of one implementation, all axes minimized.
struct Objectives {
  unsigned latency = 0;
  double cycle_ns = 0;
  double execution_ns = 0;
  unsigned area_gates = 0;
};

/// Pareto dominance: a <= b on every axis and a < b on at least one.
bool dominates(const Objectives& a, const Objectives& b);

/// One evaluated grid point.
struct ExplorePoint {
  std::string flow;
  std::string scheduler;
  std::string target;
  unsigned latency = 0;
  FlowResult result;            ///< bit-identical to uncached Session::run
  Objectives objectives;        ///< from result.report (valid when ok)
  double score = 0;             ///< weighted objective sum (valid when ok)
  bool on_frontier = false;
};

/// One skipped grid point, with why — coverage loss is never silent.
struct PrunedPoint {
  std::string flow;
  std::string scheduler;
  std::string target;
  unsigned latency = 0;
  std::string reason;           ///< "dominated-bound" | "budget"
  /// For "dominated-bound": the exact timing bound that was dominated
  /// (area_gates is 0 = unknown at bound time).
  Objectives bound;
};

struct ExploreResult {
  /// False when the request itself was malformed (see diagnostics); points
  /// may still individually fail (point.result.ok) without clearing this.
  bool ok = false;
  // Echo of the request (spec name + axes + knobs), so a serialized result
  // is self-describing.
  std::string spec_name;
  std::vector<std::string> flows;
  std::vector<std::string> schedulers;
  std::vector<std::string> targets;
  unsigned latency_lo = 0;
  unsigned latency_hi = 0;
  unsigned budget = 0;
  bool prune = true;
  ObjectiveWeights weights;
  /// Every evaluated point, sorted (flow, scheduler, target, latency).
  std::vector<ExplorePoint> points;
  /// Indices into `points` of the non-dominated set (over ok points),
  /// ascending.
  std::vector<std::size_t> frontier;
  /// Frontier index minimizing ExplorePoint::score (ties: first).
  std::optional<std::size_t> best;
  std::vector<PrunedPoint> pruned;
  /// Request-level problems ("registry", "request" stages) plus one
  /// Warning summarizing failed points when any.
  std::vector<FlowDiagnostic> diagnostics;
  CacheStats cache_stats;
  std::size_t evaluated = 0;    ///< points actually run (== points.size())
  std::size_t failed = 0;       ///< evaluated points with result.ok == false
  /// Wall-clock of the whole exploration; only serialized to JSON when the
  /// request set FlowOptions::timing (byte-stable output otherwise).
  double wall_ms = 0;
  bool timing = false;          ///< echo of request.options.timing

  /// All Error-severity diagnostic messages, joined with "; ".
  std::string error_text() const;
};

/// The exploration engine. Stateless between runs; every run creates a
/// fresh ArtifactCache shared by all of its evaluations.
class Explorer {
public:
  explicit Explorer(SessionOptions options = {});

  /// Explores the grid. Never throws for request-level failures: malformed
  /// axes come back as ok == false with Error diagnostics, per-point flow
  /// failures as points with result.ok == false. The one exception is
  /// cooperative cancellation: a tripped ExploreRequest::cancel token
  /// throws CancelledError (an abort is not a result).
  ExploreResult run(const ExploreRequest& request) const;

private:
  SessionOptions options_;
};

/// Machine-readable ExploreResult (schema "fraghls-explore-v1"): axes,
/// per-point objective summaries, frontier indices, pruned points with
/// bounds and reasons, cache hit/miss counters. Deterministic for a
/// deterministic exploration (wall_ms is emitted only when timing was on;
/// run single-worker for reproducible cache counters).
std::string to_json(const ExploreResult& r);

/// CSV of the evaluated points (one row each: axes, objectives, score,
/// frontier flag), for spreadsheet-side plotting of Fig. 3/4-style curves.
std::string to_csv(const ExploreResult& r);

} // namespace hls
