#pragma once
// ArtifactCache — content-hash-keyed memoization of per-stage artefacts,
// the store behind design-space exploration (dse/explorer.hpp).
//
// Every artefact is keyed on the 128-bit content digest of the input
// specification (ir/hash.hpp) plus the stage parameters that can change the
// artefact — and nothing else. The load-bearing subtlety is the transform
// key: a TransformResult depends on the technology target only through the
// *resolved* cycle budget (frag/transform.hpp), so the cache resolves
// n_bits first (via the memoized latency-invariant TransformPrep) and keys
// the transform on that. Two targets that estimate the same budget — e.g.
// "paper-ripple" and "fast-logic", which differ only in ns scaling — share
// one transform, one schedule and one datapath; only the report pricing
// differs.
//
// Cached stage graph (each layer keyed by the layers above it):
//
//   spec digest ──► kernel (extract_kernel + stats)     [kernel]
//              └──► narrowed kernel                     [narrow]
//   (digest, narrow) ──► TransformPrep                  [prep]
//       (relabelled kernel + §3.2 critical, incl. the DfgIndex-equivalent
//        arrival floor — the latency-invariant pieces of transform_spec)
//   (digest, narrow, latency, n_bits) ──► Transform     [transform]
//   (transform key, scheduler) ──► FragSchedule         [schedule]
//       (the schedule artefact subsumes the per-transform DfgIndex the
//        SchedulerCore builds — a hit skips that rebuild too)
//   (schedule key) ──► Datapath                         [datapath]
//
// Concurrency: getters may be called from any number of run_batch workers.
// Lookups and insertions are mutex-protected; computation runs outside the
// lock, so two workers racing on the same key may both compute — the first
// insertion wins, and because every stage function is pure both values are
// identical. Each performed computation counts as one miss, so miss counts
// can exceed the number of distinct keys under contention (hit/miss totals
// are diagnostics, not invariants).
//
// Failure is never cached: a stage that throws (infeasible override budget)
// propagates the hls::Error and leaves no entry, so replays fail with the
// same staged diagnostics as uncached runs.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "flow/stage_cache.hpp"
#include "ir/hash.hpp"

namespace hls {

/// Hit/miss accounting, per stage. Surfaced by ExploreResult (and its JSON
/// rendering) so a sweep reports how much work the cache actually removed.
struct CacheStats {
  struct Counter {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Hits over lookups; 0 when the stage was never consulted.
    double hit_rate() const {
      const std::uint64_t n = hits + misses;
      return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
    }
  };
  Counter kernel, narrow, prep, transform, schedule, datapath;

  /// Sum over all stages.
  Counter total() const;
};

/// The production StageCache: unbounded, thread-safe, content-addressed.
/// One ArtifactCache typically lives for one exploration (Explorer creates
/// one per run) or one long-lived serving Session.
class ArtifactCache final : public StageCache {
public:
  ArtifactCache() = default;
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  std::shared_ptr<const KernelArtifact> kernel(const Dfg& spec) override;
  std::shared_ptr<const Dfg> narrowed(const Dfg& spec) override;
  std::shared_ptr<const TransformResult> transform(
      const Dfg& spec, bool narrow, unsigned latency, unsigned n_bits_override,
      const DelayModel& delay) override;
  std::shared_ptr<const FragSchedule> fragment_schedule(
      const std::string& scheduler, const Dfg& spec, bool narrow,
      unsigned latency, unsigned n_bits_override,
      const DelayModel& delay) override;
  std::shared_ptr<const Datapath> bitlevel_datapath(
      const std::string& scheduler, const Dfg& spec, bool narrow,
      unsigned latency, unsigned n_bits_override,
      const DelayModel& delay) override;

  /// The memoized latency-invariant transform prep of `spec`'s (optionally
  /// narrowed) kernel. Exposed beyond the StageCache interface because the
  /// Explorer prices its §3.2 pruning bounds from prep.critical without
  /// running any per-point stage.
  std::shared_ptr<const TransformPrep> prep(const Dfg& spec, bool narrow);

  /// The resolved per-cycle budget a request would transform under — the
  /// same estimate_cycle_budget call transform_spec makes, over the
  /// memoized prep. Used for pruning bounds and transform keys alike.
  unsigned resolved_n_bits(const Dfg& spec, bool narrow, unsigned latency,
                           unsigned n_bits_override, const DelayModel& delay);

  /// Snapshot of the per-stage counters.
  CacheStats stats() const;

  /// Drops every entry (counters included).
  void clear();

private:
  /// Composite key: a spec digest extended with stage parameters.
  struct Key {
    std::uint64_t a = 0, b = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };
  template <typename V>
  using Table = std::map<Key, std::shared_ptr<const V>>;

  static Key key_of(const Digest& d) { return {d.a, d.b}; }

  /// Looks `key` up in `table` (counting a hit) or computes, inserts and
  /// returns (counting a miss; first insertion wins a race).
  template <typename V, typename Compute>
  std::shared_ptr<const V> get_or_compute(Table<V>& table,
                                          CacheStats::Counter& counter,
                                          const Key& key, Compute&& compute);

  // The public getters hash the spec exactly once and delegate here; the
  // chained stage lookups below all reuse that digest.
  std::shared_ptr<const KernelArtifact> kernel_at(const Digest& d,
                                                  const Dfg& spec);
  std::shared_ptr<const Dfg> narrowed_at(const Digest& d, const Dfg& spec);
  std::shared_ptr<const TransformPrep> prep_at(const Digest& d,
                                               const Dfg& spec, bool narrow);
  unsigned n_bits_at(const Digest& d, const Dfg& spec, bool narrow,
                     unsigned latency, unsigned n_bits_override,
                     const DelayModel& delay);
  std::shared_ptr<const TransformResult> transform_at(const Digest& d,
                                                      const Dfg& spec,
                                                      bool narrow,
                                                      unsigned latency,
                                                      unsigned n_bits);
  std::shared_ptr<const FragSchedule> schedule_at(const Digest& d,
                                                  const std::string& scheduler,
                                                  const Dfg& spec, bool narrow,
                                                  unsigned latency,
                                                  unsigned n_bits);

  mutable std::mutex mu_;
  CacheStats stats_;
  Table<KernelArtifact> kernels_;
  Table<Dfg> narrowed_;
  Table<TransformPrep> preps_;
  Table<TransformResult> transforms_;
  Table<FragSchedule> schedules_;
  Table<Datapath> datapaths_;
};

} // namespace hls
