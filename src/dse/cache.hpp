#pragma once
// ArtifactCache — content-hash-keyed memoization of per-stage artefacts,
// the store behind design-space exploration (dse/explorer.hpp) and the
// process-wide serving cache behind `fraghls --serve` (serve/server.hpp).
//
// Every artefact is keyed on the 128-bit content digest of the input
// specification (ir/hash.hpp) plus a stage tag plus the stage parameters
// that can change the artefact — and nothing else. The load-bearing
// subtlety is the transform key: a TransformResult depends on the
// technology target only through the *resolved* cycle budget
// (frag/transform.hpp), so the cache resolves n_bits first (via the
// memoized latency-invariant TransformPrep) and keys the transform on
// that. Two targets that estimate the same budget — e.g. "paper-ripple"
// and "fast-logic", which differ only in ns scaling — share one transform,
// one schedule and one datapath; only the report pricing differs.
//
// Cached stage graph (each layer keyed by the layers above it):
//
//   spec digest ──► kernel (extract_kernel + stats)     [kernel]
//              └──► narrowed kernel                     [narrow]
//   (digest, narrow) ──► KernelPartition                [partition]
//       (the "partitioned" flow's kernel split; its per-kernel stages are
//        keyed on each sub-kernel's own digest through the getters above,
//        so editing one kernel re-runs only that kernel's column)
//   (digest, narrow) ──► TransformPrep                  [prep]
//       (relabelled kernel + §3.2 critical, incl. the DfgIndex-equivalent
//        arrival floor — the latency-invariant pieces of transform_spec)
//   (digest, narrow, latency, n_bits) ──► Transform     [transform]
//   (transform key, scheduler) ──► FragSchedule         [schedule]
//       (the schedule artefact subsumes the per-transform DfgIndex the
//        SchedulerCore builds — a hit skips that rebuild too)
//   (schedule key) ──► Datapath                         [datapath]
//
// Concurrency: getters may be called from any number of run_batch workers
// (or serve connections). The store is sharded — hash(key) selects one of
// `ArtifactCacheOptions::shards` independently-locked shards, so
// concurrent lookups of different keys rarely contend on a mutex.
// Computation runs outside any lock, so two workers racing on the same
// key may both compute — the first insertion wins, and because every
// stage function is pure both values are identical. Each performed
// computation counts as one miss, so miss counts can exceed the number of
// distinct keys under contention (hit/miss totals are diagnostics, not
// invariants).
//
// Bounding: `max_resident_bytes` (0 = unbounded, the exploration default)
// bounds the approximate resident artefact bytes. The budget is split
// evenly across shards; each shard evicts its least-recently-used entries
// when over its share, oldest first. Eviction only drops cache residency —
// values are handed out as shared_ptr, so artefacts in flight stay alive,
// and a re-request simply recomputes (counted as a miss). An artefact
// larger than a shard's share by itself is served to its caller but not
// retained (evicted immediately after insertion), so resident bytes never
// exceed the configured bound.
//
// Failure is never cached: a stage that throws (infeasible override budget)
// propagates the hls::Error and leaves no entry, so replays fail with the
// same staged diagnostics as uncached runs.

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "flow/stage_cache.hpp"
#include "ir/hash.hpp"

namespace hls {

/// Cache accounting, per stage. Surfaced by ExploreResult (and its JSON
/// rendering) so a sweep reports how much work the cache actually removed,
/// and by the serve `stats` response (serve/server.hpp), which adds the
/// eviction/residency columns.
struct CacheStats {
  struct Counter {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;       ///< entries dropped by the LRU bound
    std::uint64_t resident_bytes = 0;  ///< approximate bytes currently held
    /// Hits over lookups; 0 when the stage was never consulted.
    double hit_rate() const {
      const std::uint64_t n = hits + misses;
      return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
    }
  };
  Counter kernel, narrow, prep, transform, schedule, datapath, partition;

  /// Sum over all stages.
  Counter total() const;
};

/// Sizing of an ArtifactCache. The defaults reproduce the exploration
/// behaviour (unbounded, lightly sharded); a serving process passes an
/// explicit byte bound (CLI `--cache-mb`).
struct ArtifactCacheOptions {
  /// Lock stripes; rounded up to a power of two, minimum 1. More shards =
  /// less mutex contention, slightly coarser LRU (each shard evicts
  /// independently over its share of the byte budget).
  std::size_t shards = 8;
  /// Approximate bound on resident artefact bytes, 0 = unbounded.
  std::size_t max_resident_bytes = 0;
};

/// The production StageCache: thread-safe, content-addressed, sharded,
/// optionally byte-bounded. One ArtifactCache typically lives for one
/// exploration (Explorer creates one per run unless the request supplies
/// one) or for a whole serving process.
class ArtifactCache final : public StageCache {
public:
  explicit ArtifactCache(ArtifactCacheOptions options = {});
  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  // The CancelToken rides into the compute functions: a compute that trips
  // unwinds before any insert (get_or_compute inserts only on success), so
  // a cancelled request leaves the store exactly as if it never arrived.
  std::shared_ptr<const KernelArtifact> kernel(const Dfg& spec) override;
  std::shared_ptr<const Dfg> narrowed(const Dfg& spec) override;
  std::shared_ptr<const TransformResult> transform(
      const Dfg& spec, bool narrow, unsigned latency, unsigned n_bits_override,
      const DelayModel& delay, const CancelToken& cancel = {}) override;
  std::shared_ptr<const FragSchedule> fragment_schedule(
      const std::string& scheduler, const Dfg& spec, bool narrow,
      unsigned latency, unsigned n_bits_override, const DelayModel& delay,
      const CancelToken& cancel = {}) override;
  std::shared_ptr<const Datapath> bitlevel_datapath(
      const std::string& scheduler, const Dfg& spec, bool narrow,
      unsigned latency, unsigned n_bits_override, const DelayModel& delay,
      const CancelToken& cancel = {}) override;
  std::shared_ptr<const KernelPartition> partition(const Dfg& spec,
                                                   bool narrow) override;
  unsigned critical_time(const Dfg& spec, bool narrow) override;

  /// The memoized latency-invariant transform prep of `spec`'s (optionally
  /// narrowed) kernel. Exposed beyond the StageCache interface because the
  /// Explorer prices its §3.2 pruning bounds from prep.critical without
  /// running any per-point stage.
  std::shared_ptr<const TransformPrep> prep(const Dfg& spec, bool narrow);

  /// The resolved per-cycle budget a request would transform under — the
  /// same estimate_cycle_budget call transform_spec makes, over the
  /// memoized prep. Used for pruning bounds and transform keys alike.
  unsigned resolved_n_bits(const Dfg& spec, bool narrow, unsigned latency,
                           unsigned n_bits_override, const DelayModel& delay);

  /// The sizing this cache was constructed with (shards normalized).
  const ArtifactCacheOptions& options() const { return options_; }

  /// Snapshot of the per-stage counters.
  CacheStats stats() const;

  /// Sorted keys of every resident entry — debug/test observability. The
  /// cancellation property test asserts that a cancelled-then-retried
  /// request leaves exactly the key set of a never-cancelled run; because
  /// keys are content digests of the inputs and every stage function is
  /// pure, equal key sets imply bit-identical resident values.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> resident_keys() const;

  /// Drops every entry (counters included).
  void clear();

private:
  /// Stage tag, mixed into every key (kernel and narrow share the bare
  /// spec digest, so the tag is what separates them in the unified store)
  /// and indexing the per-stage counters.
  enum Stage : unsigned {
    kKernel = 0,
    kNarrow,
    kPrep,
    kTransform,
    kSchedule,
    kDatapath,
    kPartition,
    kStageCount
  };

  /// Composite key: a spec digest extended with the stage tag and the
  /// stage parameters.
  struct Key {
    std::uint64_t a = 0, b = 0;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  /// One resident artefact: a type-erased value (the stage tag identifies
  /// the concrete type), its approximate byte cost and its LRU position.
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    unsigned stage = 0;
    std::list<Key>::iterator lru;
  };

  /// One lock stripe: an independently locked slice of the key space with
  /// its own recency list (front = coldest) and byte accounting.
  struct Shard {
    mutable std::mutex mu;  ///< mutable: resident_keys() is const
    std::map<Key, Entry> table;
    std::list<Key> lru;
    std::size_t resident = 0;
  };

  /// Lock-free per-stage counters (shards update them without holding any
  /// other shard's mutex).
  struct AtomicCounter {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> resident_bytes{0};
  };

  static Key key_of(Digest d, Stage stage) {
    d.mix(0x5347u);  // stage-tag marker, then the tag itself
    d.mix(stage);
    return {d.a, d.b};
  }

  Shard& shard_for(const Key& key) {
    // The digest is already well mixed; fold both words.
    return shards_[(key.a ^ (key.b * 0x9E3779B97F4A7C15ull)) &
                   (shards_.size() - 1)];
  }

  /// Looks `key` up in its shard (counting a hit and touching the LRU) or
  /// computes outside the lock, inserts and returns (counting a miss;
  /// first insertion wins a race), then evicts the shard down to its
  /// byte share.
  template <typename V, typename Compute>
  std::shared_ptr<const V> get_or_compute(Stage stage, const Key& key,
                                          Compute&& compute);

  /// Drops coldest entries while the shard is over its share; never drops
  /// `keep` (the entry just inserted). Caller holds the shard lock.
  void evict_locked(Shard& shard);

  // The public getters hash the spec exactly once and delegate here; the
  // chained stage lookups below all reuse that digest.
  std::shared_ptr<const KernelArtifact> kernel_at(const Digest& d,
                                                  const Dfg& spec);
  std::shared_ptr<const Dfg> narrowed_at(const Digest& d, const Dfg& spec);
  std::shared_ptr<const TransformPrep> prep_at(const Digest& d,
                                               const Dfg& spec, bool narrow);
  unsigned n_bits_at(const Digest& d, const Dfg& spec, bool narrow,
                     unsigned latency, unsigned n_bits_override,
                     const DelayModel& delay);
  std::shared_ptr<const TransformResult> transform_at(
      const Digest& d, const Dfg& spec, bool narrow, unsigned latency,
      unsigned n_bits, const CancelToken& cancel);
  std::shared_ptr<const FragSchedule> schedule_at(
      const Digest& d, const std::string& scheduler, const Dfg& spec,
      bool narrow, unsigned latency, unsigned n_bits,
      const CancelToken& cancel);

  ArtifactCacheOptions options_;
  std::size_t per_shard_bound_ = 0;  ///< max_resident_bytes / shards
  std::vector<Shard> shards_;
  AtomicCounter counters_[kStageCount];
};

} // namespace hls
