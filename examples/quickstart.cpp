// Quickstart: the motivational example of the paper, end to end.
//
//   1. Build a behavioural specification with the SpecBuilder API.
//   2. Run the "optimized" flow (kernel extraction -> cycle estimation ->
//      fragmentation -> scheduling -> allocation) through hls::Session.
//   3. Compare against the conventional baseline and print the transformed
//      specification as VHDL.
//
// Build & run:   ./build/examples/quickstart

#include <iostream>

#include "flow/session.hpp"
#include "ir/builder.hpp"
#include "ir/print.hpp"
#include "rtl/vhdl.hpp"
#include "sched/schedule.hpp"
#include "support/strings.hpp"

using namespace hls;

int main() {
  // C = A + B; E = C + D; G = E + F  (three chained 16-bit additions).
  SpecBuilder b("example");
  const Val A = b.in("A", 16), B = b.in("B", 16);
  const Val D = b.in("D", 16), F = b.in("F", 16);
  b.out("G", A + B + D + F);
  const Dfg spec = std::move(b).take();

  std::cout << "Specification:\n" << to_string(spec) << '\n';

  const unsigned latency = 3;
  // A Session resolves flows by registry name and returns uniform results.
  const Session session;
  const ImplementationReport baseline =
      session.run({spec, "conventional", latency}).require().report;
  const FlowResult opt = session.run({spec, "optimized", latency}).require();

  std::cout << "Conventional schedule: cycle " << fixed(baseline.cycle_ns, 2)
            << " ns, execution " << fixed(baseline.execution_ns, 2)
            << " ns, area " << baseline.area.total() << " gates\n";
  std::cout << "Optimized schedule:    cycle "
            << fixed(opt.report.cycle_ns, 2) << " ns, execution "
            << fixed(opt.report.execution_ns, 2) << " ns, area "
            << opt.report.area.total() << " gates\n";
  std::cout << "Saved " << pct(opt.report.cycle_saving_vs(baseline))
            << " of the cycle length at the same latency.\n\n";

  std::cout << "Schedule of the transformed specification:\n"
            << to_string(opt.transform->spec, opt.schedule->schedule) << '\n';

  std::cout << "Transformed specification (VHDL, like the paper's Fig. 2a):\n"
            << emit_vhdl(opt.transform->spec, "beh2");
  return 0;
}
