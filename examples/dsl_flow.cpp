// DSL front end: write the HAL differential-equation solver in the
// behavioural spec language, parse it, and push it through all three flows
// (conventional, BLC, optimized).
//
// Build & run:   ./build/examples/dsl_flow

#include <iostream>

#include "flow/session.hpp"
#include "ir/eval.hpp"
#include "ir/print.hpp"
#include "parser/parser.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace hls;

int main() {
  const std::string source = R"(
    // HAL differential equation solver:
    //   x1 = x + dx;  u1 = u - 3*x*u*dx - 3*y*dx;  y1 = y + u*dx
    module diffeq {
      input x: u16;
      input y: u16;
      input u: u16;
      input dx: u16;
      input a: u16;
      output x1: u16;
      output u1: u16;
      output y1: u16;
      output c: u1;

      let udx: u16 = u * dx;
      let t3: u16 = (3:u2 * x) * udx;
      let t5: u16 = (3:u2 * y) * dx;
      let xn = x + dx;
      x1 = xn;
      u1 = (u - t3) - t5;
      y1 = y + udx;
      c = xn < a;
    }
  )";

  std::cout << "--- source ---\n" << source << "\n--- parsed ---\n";
  const Dfg spec = parse_spec(source);
  std::cout << summarize(spec) << "\n\n";

  // Sanity: evaluate one iteration.
  const OutputValues out =
      evaluate(spec, {{"x", 2}, {"y", 1}, {"u", 3}, {"dx", 1}, {"a", 10}});
  std::cout << "one iteration at x=2 y=1 u=3 dx=1: x1=" << out.at("x1")
            << " y1=" << out.at("y1") << " u1=" << static_cast<int16_t>(out.at("u1"))
            << " c=" << out.at("c") << "\n\n";

  // All nine (flow, latency) jobs as one concurrent Session batch.
  const Session session;
  std::vector<FlowRequest> requests;
  for (unsigned latency : {4u, 5u, 6u}) {
    for (const char* flow : {"conventional", "blc", "optimized"}) {
      requests.push_back({spec, flow, latency});
    }
  }
  const std::vector<FlowResult> results = session.run_batch(requests);

  TextTable t({"Flow", "lat", "cycle (ns)", "exec (ns)", "area (gates)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ImplementationReport& r = results[i].require().report;
    t.add_row({results[i].flow, std::to_string(r.latency),
               fixed(r.cycle_ns, 2), fixed(r.execution_ns, 2),
               std::to_string(r.area.total())});
    if (i % 3 == 2) t.add_rule();
  }
  std::cout << t;
  return 0;
}
