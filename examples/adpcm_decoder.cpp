// ADPCM decoder modules (CCITT G.721): transform the IAQ, TTD and OPFC+SCA
// modules at the latencies the paper's Behavioral Compiler selected, report
// the kernel normalization effect (signed/additive ops -> unsigned adds),
// and emit the transformed IAQ as VHDL.
//
// Build & run:   ./build/examples/adpcm_decoder

#include <iostream>

#include "flow/session.hpp"
#include "ir/print.hpp"
#include "rtl/vhdl.hpp"
#include "sched/schedule.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "suites/suites.hpp"

using namespace hls;

int main() {
  std::cout << "G.721 ADPCM decoder modules through the presynthesis "
               "transformation.\n\n";

  TextTable t({"Module", "lat", "ops before", "adds after kernel",
               "fragments", "cycle saved"});
  const Session session;
  for (const SuiteEntry& s : adpcm_suites()) {
    const Dfg d = s.build();
    const unsigned lat = s.latencies.front();
    const ImplementationReport orig =
        session.run({d, "original", lat}).require().report;
    const FlowResult opt = session.run({d, "optimized", lat}).require();
    t.add_row({s.name, std::to_string(lat),
               std::to_string(opt.kernel_stats->ops_before),
               std::to_string(opt.kernel_stats->adds_after),
               std::to_string(opt.transform->adds.size()),
               pct(opt.report.cycle_saving_vs(orig))});
  }
  std::cout << t << '\n';

  const FlowResult iaq = session.run({adpcm_iaq(), "optimized", 3}).require();
  std::cout << "IAQ kernel: " << summarize(*iaq.kernel) << '\n';
  std::cout << "IAQ transformed schedule:\n"
            << to_string(iaq.transform->spec, iaq.schedule->schedule) << '\n';
  std::cout << "IAQ transformed specification (VHDL):\n"
            << emit_vhdl(iaq.transform->spec, "beh_opt");
  return 0;
}
