// Design-space exploration of the fifth-order elliptic wave filter: sweep
// the latency constraint, synthesize original and optimized implementations
// at each point, and report the Pareto view (execution time vs area) a
// designer would use to pick an operating point.
//
// Build & run:   ./build/examples/filter_explorer

#include <iostream>

#include "flow/session.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "suites/suites.hpp"

using namespace hls;

int main() {
  const Dfg filter = elliptic();
  std::cout << "Fifth-order elliptic wave filter, one iteration per frame.\n";
  std::cout << "Sweep: latency 3..15 cycles, both specifications.\n\n";

  TextTable t({"lat", "orig cycle", "orig exec", "orig area", "opt cycle",
               "opt exec", "opt area", "saved"});
  // Both series, every latency, as two concurrent Session sweeps.
  const Session session;
  const std::vector<FlowResult> orig_sweep =
      session.run_sweep(filter, "original", 3, 15);
  const std::vector<FlowResult> opt_sweep =
      session.run_sweep(filter, "optimized", 3, 15);

  double best_exec = 1e30;
  std::size_t best_point = 0;
  for (std::size_t i = 0; i < orig_sweep.size(); ++i) {
    const ImplementationReport& orig = orig_sweep[i].require().report;
    const FlowResult& opt = opt_sweep[i].require();
    t.add_row({std::to_string(orig.latency), fixed(orig.cycle_ns, 2),
               fixed(orig.execution_ns, 1), std::to_string(orig.area.total()),
               fixed(opt.report.cycle_ns, 2), fixed(opt.report.execution_ns, 1),
               std::to_string(opt.report.area.total()),
               pct(opt.report.cycle_saving_vs(orig))});
    if (opt.report.execution_ns < best_exec) {
      best_exec = opt.report.execution_ns;
      best_point = i;
    }
  }
  std::cout << t << '\n';

  const FlowResult& best = opt_sweep[best_point];
  const unsigned best_lat = best.report.latency;

  // Re-synthesize the chosen operating point under every registered
  // technology target (one run_sweep call: targets are a sweep axis too).
  std::cout << "Technology targets at latency " << best_lat << ":\n";
  TextTable tt({"target", "cycle", "exec", "area", "budget (bits)"});
  const std::vector<std::string> targets = TargetRegistry::global().names();
  const std::vector<FlowResult> per_target = session.run_sweep(
      filter, "optimized", best_lat, best_lat, {}, "list", targets);
  for (const FlowResult& r : per_target) {
    const FlowResult& ok = r.require();
    tt.add_row({ok.report.target, fixed(ok.report.cycle_ns, 2),
                fixed(ok.report.execution_ns, 1),
                std::to_string(ok.report.area.total()),
                std::to_string(ok.transform->n_bits)});
  }
  std::cout << tt << '\n';

  std::cout << "Fastest optimized design point: latency " << best_lat << ", "
            << fixed(best.report.execution_ns, 1) << " ns per iteration ("
            << fixed(1000.0 / best.report.execution_ns, 1) << " MHz sample rate), "
            << best.report.area.total() << " gates.\n";
  std::cout << "Transformed spec: " << best.transform->spec.additive_op_count()
            << " additions (from " << best.kernel->additive_op_count()
            << " kernel additions), " << best.transform->fragmented_op_count
            << " operations fragmented, budget " << best.transform->n_bits
            << " chained bits/cycle.\n";
  return 0;
}
