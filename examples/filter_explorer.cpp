// Design-space exploration of the fifth-order elliptic wave filter —
// through hls::Explorer, the dse/ frontier engine. One request spans the
// whole grid a designer would consider (original vs optimized flow, every
// registered technology target, latency 3..15); the explorer fans the
// evaluations over a shared ArtifactCache, prunes latency points whose
// §3.2 timing bound is already dominated, and returns the live Pareto
// frontier over (latency, cycle, execution time, area).
//
// Build & run:   ./build/examples/filter_explorer

#include <iostream>

#include "dse/explorer.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "suites/suites.hpp"
#include "timing/target.hpp"

using namespace hls;

int main() {
  ExploreRequest req;
  req.spec = elliptic();
  req.flows = {"original", "optimized"};
  req.targets = TargetRegistry::global().names();
  req.latency_lo = 3;
  req.latency_hi = 15;
  // Rank the frontier purely by execution time (the default weights rank
  // by cycle length, so zero that out explicitly).
  req.weights.cycle_ns = 0;
  req.weights.execution_ns = 1;

  std::cout << "Fifth-order elliptic wave filter, one iteration per frame.\n"
            << "Grid: latency 3..15 x {original, optimized} x "
            << req.targets.size() << " targets.\n\n";

  const ExploreResult r = Explorer().run(req);
  if (!r.ok) {
    std::cerr << "exploration failed: " << r.error_text() << '\n';
    return 1;
  }

  std::cout << "evaluated " << r.evaluated << " points (" << r.failed
            << " failed, " << r.pruned.size()
            << " pruned as dominated); cache served "
            << r.cache_stats.total().hits << " stage artefacts ("
            << pct(r.cache_stats.total().hit_rate()) << " hit rate)\n\n";

  TextTable t({"flow", "target", "lat", "cycle (ns)", "exec (ns)",
               "area (gates)", ""});
  for (const std::size_t i : r.frontier) {
    const ExplorePoint& p = r.points[i];
    t.add_row({p.flow, p.target, std::to_string(p.latency),
               fixed(p.objectives.cycle_ns, 2),
               fixed(p.objectives.execution_ns, 1),
               std::to_string(p.objectives.area_gates),
               r.best && *r.best == i ? "<- fastest" : ""});
  }
  std::cout << "Pareto frontier (" << r.frontier.size() << " points):\n" << t
            << '\n';

  if (!r.best) {
    std::cerr << "no feasible design point on the grid\n";
    return 1;
  }
  // The chosen operating point still carries the full FlowResult, with
  // every artefact an uncached Session::run would have produced.
  const ExplorePoint& best = r.points[*r.best];
  std::cout << "Fastest design point: " << best.flow << " flow on '"
            << best.target << "', latency " << best.latency << ", "
            << fixed(best.objectives.execution_ns, 1) << " ns per iteration ("
            << fixed(1000.0 / best.objectives.execution_ns, 1)
            << " MHz sample rate), " << best.objectives.area_gates
            << " gates.\n";
  if (best.result.transform) {
    std::cout << "Transformed spec: "
              << best.result.transform->spec.additive_op_count()
              << " additions, " << best.result.transform->fragmented_op_count
              << " operations fragmented, budget "
              << best.result.transform->n_bits << " chained bits/cycle.\n";
  }
  return 0;
}
